#ifndef VREC_EVAL_SIGNIFICANCE_H_
#define VREC_EVAL_SIGNIFICANCE_H_

#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace vrec::eval {

/// Result of a paired bootstrap comparison of two methods over the same
/// query set.
struct BootstrapResult {
  /// Mean per-query difference (method A - method B).
  double mean_difference = 0.0;
  /// Two-sided bootstrap p-value of the null "no difference".
  double p_value = 1.0;
  /// 95% bootstrap confidence interval of the mean difference.
  double ci_low = 0.0;
  double ci_high = 0.0;
  int resamples = 0;
};

/// Paired bootstrap test over per-query metric values (e.g. the AP of each
/// of the 10 source-video queries under two recommenders). The paper
/// compares methods by point estimates only; this utility lets downstream
/// users say whether a gap survives query resampling. Requires >= 2 paired
/// observations.
[[nodiscard]]
StatusOr<BootstrapResult> PairedBootstrap(const std::vector<double>& a,
                                          const std::vector<double>& b,
                                          int resamples = 10000,
                                          uint64_t seed = 17);

}  // namespace vrec::eval

#endif  // VREC_EVAL_SIGNIFICANCE_H_
