#include "eval/significance.h"

#include <algorithm>
#include <cmath>

namespace vrec::eval {

StatusOr<BootstrapResult> PairedBootstrap(const std::vector<double>& a,
                                          const std::vector<double>& b,
                                          int resamples, uint64_t seed) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("paired samples must have equal length");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("need at least 2 paired observations");
  }
  if (resamples < 100) {
    return Status::InvalidArgument("need at least 100 resamples");
  }
  const size_t n = a.size();
  std::vector<double> diff(n);
  double mean = 0.0;
  for (size_t i = 0; i < n; ++i) {
    diff[i] = a[i] - b[i];
    mean += diff[i];
  }
  mean /= static_cast<double>(n);

  Rng rng(seed);
  std::vector<double> means;
  means.reserve(static_cast<size_t>(resamples));
  int opposite_sign = 0;
  for (int r = 0; r < resamples; ++r) {
    double m = 0.0;
    for (size_t i = 0; i < n; ++i) {
      m += diff[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1))];
    }
    m /= static_cast<double>(n);
    means.push_back(m);
    // Two-sided sign-flip count relative to the observed mean.
    if ((mean >= 0.0 && m <= 0.0) || (mean <= 0.0 && m >= 0.0)) {
      ++opposite_sign;
    }
  }
  std::sort(means.begin(), means.end());

  BootstrapResult result;
  result.mean_difference = mean;
  result.resamples = resamples;
  result.p_value = std::min(
      1.0, 2.0 * static_cast<double>(opposite_sign) /
               static_cast<double>(resamples));
  const auto lo_idx = static_cast<size_t>(0.025 * (resamples - 1));
  const auto hi_idx = static_cast<size_t>(0.975 * (resamples - 1));
  result.ci_low = means[lo_idx];
  result.ci_high = means[hi_idx];
  return result;
}

}  // namespace vrec::eval
