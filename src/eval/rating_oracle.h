#ifndef VREC_EVAL_RATING_ORACLE_H_
#define VREC_EVAL_RATING_ORACLE_H_

#include <vector>

#include "datagen/dataset.h"
#include "util/random.h"
#include "video/video.h"

namespace vrec::eval {

/// Stands in for the paper's 10-person user study: given a source video and
/// a recommended video, each simulated rater produces a 1-5 score from the
/// latent topic overlap (plus near-duplicate kinship), perturbed by bounded
/// observer noise; the oracle reports the panel mean.
///
/// The mapping is monotone in true relatedness, so metric *orderings* of
/// methods are preserved — which is all the paper's Figures 7-11 claim.
class RatingOracle {
 public:
  struct Options {
    int num_raters = 10;
    /// Std-dev of each rater's score perturbation (in rating points).
    double rater_noise = 0.35;
    uint64_t seed = 7;
  };

  explicit RatingOracle(const datagen::Dataset* dataset);
  RatingOracle(const datagen::Dataset* dataset, const Options& options);

  /// Panel-mean rating (1..5, continuous) of recommending `candidate` for
  /// the source video `query`.
  double Rate(video::VideoId query, video::VideoId candidate) const;

  /// Ratings for a whole ranked list.
  std::vector<double> RateList(video::VideoId query,
                               const std::vector<video::VideoId>& ranked) const;

  /// The deterministic pre-noise panel consensus (exposed for tests).
  double ConsensusScore(video::VideoId query, video::VideoId candidate) const;

 private:
  const datagen::Dataset* dataset_;
  Options options_;
  /// Fixed per-rater bias, drawn once (raters are consistent individuals).
  std::vector<double> rater_bias_;
};

}  // namespace vrec::eval

#endif  // VREC_EVAL_RATING_ORACLE_H_
