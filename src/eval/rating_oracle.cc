#include "eval/rating_oracle.h"

#include <algorithm>
#include <cmath>

#include "datagen/topic_model.h"

namespace vrec::eval {

RatingOracle::RatingOracle(const datagen::Dataset* dataset)
    : RatingOracle(dataset, Options{}) {}

RatingOracle::RatingOracle(const datagen::Dataset* dataset,
                           const Options& options)
    : dataset_(dataset), options_(options) {
  Rng rng(options_.seed);
  rater_bias_.resize(static_cast<size_t>(options_.num_raters));
  for (double& b : rater_bias_) b = rng.Normal(0.0, 0.15);
}

double RatingOracle::ConsensusScore(video::VideoId query,
                                    video::VideoId candidate) const {
  if (query == candidate) return 5.0;
  const auto& meta = dataset_->corpus.meta;
  const auto& q = meta[static_cast<size_t>(query)];
  const auto& c = meta[static_cast<size_t>(candidate)];

  // Near-duplicate kinship: same original, or one derives from the other.
  const video::VideoId q_root = q.source_id >= 0 ? q.source_id : q.id;
  const video::VideoId c_root = c.source_id >= 0 ? c.source_id : c.id;
  double relatedness;
  if (q_root == c_root) {
    relatedness = 0.97;
  } else {
    const double sim =
        datagen::TopicSimilarity(q.topic_mixture, c.topic_mixture);
    // A shared channel gives a weak floor (same query, loosely related).
    const double floor = (q.channel == c.channel) ? 0.25 : 0.05;
    relatedness = std::max(floor, 0.9 * sim);
  }
  return 1.0 + 4.0 * std::clamp(relatedness, 0.0, 1.0);
}

double RatingOracle::Rate(video::VideoId query,
                          video::VideoId candidate) const {
  const double consensus = ConsensusScore(query, candidate);
  // Deterministic per-(pair, rater) noise: the same rater always gives the
  // same score to the same pair, independent of evaluation order.
  const uint64_t pair_seed =
      options_.seed ^ (static_cast<uint64_t>(query) * 0x9E3779B97F4A7C15ULL) ^
      (static_cast<uint64_t>(candidate) * 0xC2B2AE3D27D4EB4FULL);
  Rng rng(pair_seed);
  double sum = 0.0;
  for (int r = 0; r < options_.num_raters; ++r) {
    const double score = consensus + rater_bias_[static_cast<size_t>(r)] +
                         rng.Normal(0.0, options_.rater_noise);
    sum += std::clamp(score, 1.0, 5.0);
  }
  return sum / static_cast<double>(options_.num_raters);
}

std::vector<double> RatingOracle::RateList(
    video::VideoId query, const std::vector<video::VideoId>& ranked) const {
  std::vector<double> ratings;
  ratings.reserve(ranked.size());
  for (video::VideoId v : ranked) ratings.push_back(Rate(query, v));
  return ratings;
}

}  // namespace vrec::eval
