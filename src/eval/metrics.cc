#include "eval/metrics.h"

#include <algorithm>

namespace vrec::eval {

double AverageRating(const std::vector<double>& ratings) {
  if (ratings.empty()) return 0.0;
  double sum = 0.0;
  for (double r : ratings) sum += r;
  return sum / static_cast<double>(ratings.size());
}

double AverageAccuracy(const std::vector<double>& ratings) {
  if (ratings.empty()) return 0.0;
  size_t relevant = 0;
  for (double r : ratings) {
    if (r > kRelevanceThreshold) ++relevant;
  }
  return static_cast<double>(relevant) / static_cast<double>(ratings.size());
}

double AveragePrecision(const std::vector<double>& ratings) {
  size_t relevant_seen = 0;
  double sum_precision = 0.0;
  for (size_t rank = 0; rank < ratings.size(); ++rank) {
    if (ratings[rank] > kRelevanceThreshold) {
      ++relevant_seen;
      sum_precision += static_cast<double>(relevant_seen) /
                       static_cast<double>(rank + 1);
    }
  }
  if (relevant_seen == 0) return 0.0;
  return sum_precision / static_cast<double>(relevant_seen);
}

double MeanAveragePrecision(const std::vector<std::vector<double>>& ratings) {
  if (ratings.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& list : ratings) sum += AveragePrecision(list);
  return sum / static_cast<double>(ratings.size());
}

double PrecisionAt(const std::vector<double>& ratings, size_t n) {
  if (n == 0) return 0.0;
  size_t relevant = 0;
  const size_t limit = std::min(n, ratings.size());
  for (size_t i = 0; i < limit; ++i) {
    if (ratings[i] > kRelevanceThreshold) ++relevant;
  }
  return static_cast<double>(relevant) / static_cast<double>(n);
}

EffectivenessReport Evaluate(const std::vector<std::vector<double>>& ratings,
                             size_t cutoff) {
  EffectivenessReport report;
  if (ratings.empty()) return report;
  std::vector<std::vector<double>> truncated;
  truncated.reserve(ratings.size());
  for (const auto& list : ratings) {
    truncated.emplace_back(list.begin(),
                           list.begin() + static_cast<long>(std::min(
                                              cutoff, list.size())));
  }
  double ar = 0.0, ac = 0.0;
  for (const auto& list : truncated) {
    ar += AverageRating(list);
    ac += AverageAccuracy(list);
  }
  report.average_rating = ar / static_cast<double>(truncated.size());
  report.average_accuracy = ac / static_cast<double>(truncated.size());
  report.map = MeanAveragePrecision(truncated);
  return report;
}

}  // namespace vrec::eval
