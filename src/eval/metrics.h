#ifndef VREC_EVAL_METRICS_H_
#define VREC_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

namespace vrec::eval {

/// Effectiveness metrics of Section 5.2 over rating scores in [1, 5].
/// A recommendation is *relevant* when its rating exceeds 4 ("videos with
/// the rating bigger than 4").
inline constexpr double kRelevanceThreshold = 4.0;

/// Average rating score (Equation 10a) of the returned list.
double AverageRating(const std::vector<double>& ratings);

/// Average accuracy (Equation 10b): fraction of returned videos rated > 4.
double AverageAccuracy(const std::vector<double>& ratings);

/// Non-interpolated average precision (Equation 11) over one ranked list:
/// AP = sum_over_relevant_ranks(P@rank) / #relevant-retrieved; 0 when the
/// list has no relevant video.
double AveragePrecision(const std::vector<double>& ratings);

/// Mean average precision (Equation 12) across queries' ranked lists.
double MeanAveragePrecision(const std::vector<std::vector<double>>& ratings);

/// Precision at cutoff n (diagnostic).
double PrecisionAt(const std::vector<double>& ratings, size_t n);

/// Aggregate of the three paper metrics at one cutoff.
struct EffectivenessReport {
  double average_rating = 0.0;
  double average_accuracy = 0.0;
  double map = 0.0;
};

/// Computes AR / AC averaged over queries plus MAP, truncating each ranked
/// rating list to `cutoff`.
EffectivenessReport Evaluate(const std::vector<std::vector<double>>& ratings,
                             size_t cutoff);

}  // namespace vrec::eval

#endif  // VREC_EVAL_METRICS_H_
