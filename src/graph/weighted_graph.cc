#include "graph/weighted_graph.h"

#include "graph/union_find.h"

namespace vrec::graph {

WeightedGraph::WeightedGraph(size_t node_count)
    : node_count_(node_count), adjacency_(node_count) {}

void WeightedGraph::EnsureNodeCount(size_t n) {
  if (n > node_count_) {
    node_count_ = n;
    adjacency_.resize(n);
  }
}

void WeightedGraph::AddEdge(size_t u, size_t v, double weight) {
  EnsureNodeCount(std::max(u, v) + 1);
  // Accumulate into an existing edge if present.
  for (size_t idx : adjacency_[u]) {
    Edge& e = edges_[idx];
    if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) {
      e.weight += weight;
      return;
    }
  }
  edges_.push_back({u, v, weight});
  adjacency_[u].push_back(edges_.size() - 1);
  adjacency_[v].push_back(edges_.size() - 1);
}

double WeightedGraph::EdgeWeight(size_t u, size_t v) const {
  if (u >= node_count_) return 0.0;
  for (size_t idx : adjacency_[u]) {
    const Edge& e = edges_[idx];
    if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) return e.weight;
  }
  return 0.0;
}

std::vector<std::pair<size_t, double>> WeightedGraph::Neighbors(
    size_t u) const {
  std::vector<std::pair<size_t, double>> out;
  if (u >= node_count_) return out;
  out.reserve(adjacency_[u].size());
  for (size_t idx : adjacency_[u]) {
    const Edge& e = edges_[idx];
    out.emplace_back(e.u == u ? e.v : e.u, e.weight);
  }
  return out;
}

std::pair<std::vector<int>, int> WeightedGraph::ConnectedComponents() const {
  UnionFind uf(node_count_);
  for (const Edge& e : edges_) uf.Union(e.u, e.v);
  std::vector<int> labels = uf.Labels();
  return {std::move(labels), static_cast<int>(uf.num_sets())};
}

}  // namespace vrec::graph
