#include "graph/weighted_graph.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "graph/union_find.h"

namespace vrec::graph {

WeightedGraph::WeightedGraph(size_t node_count)
    : node_count_(node_count), adjacency_(node_count) {}

void WeightedGraph::EnsureNodeCount(size_t n) {
  if (n > node_count_) {
    node_count_ = n;
    adjacency_.resize(n);
  }
}

void WeightedGraph::AddEdge(size_t u, size_t v, double weight) {
  EnsureNodeCount(std::max(u, v) + 1);
  // Accumulate into an existing edge if present.
  for (size_t idx : adjacency_[u]) {
    Edge& e = edges_[idx];
    if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) {
      e.weight += weight;
      return;
    }
  }
  edges_.push_back({u, v, weight});
  adjacency_[u].push_back(edges_.size() - 1);
  adjacency_[v].push_back(edges_.size() - 1);
}

double WeightedGraph::EdgeWeight(size_t u, size_t v) const {
  if (u >= node_count_) return 0.0;
  for (size_t idx : adjacency_[u]) {
    const Edge& e = edges_[idx];
    if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) return e.weight;
  }
  return 0.0;
}

std::vector<std::pair<size_t, double>> WeightedGraph::Neighbors(
    size_t u) const {
  std::vector<std::pair<size_t, double>> out;
  if (u >= node_count_) return out;
  out.reserve(adjacency_[u].size());
  for (size_t idx : adjacency_[u]) {
    const Edge& e = edges_[idx];
    out.emplace_back(e.u == u ? e.v : e.u, e.weight);
  }
  return out;
}

Status WeightedGraph::CheckInvariants() const {
  if (adjacency_.size() != node_count_) {
    return Status::Internal("adjacency index size != node count");
  }
  std::set<std::pair<size_t, size_t>> seen;
  for (size_t idx = 0; idx < edges_.size(); ++idx) {
    const Edge& e = edges_[idx];
    if (e.u >= node_count_ || e.v >= node_count_) {
      return Status::Internal("edge endpoint out of node range");
    }
    if (!seen.insert(std::minmax(e.u, e.v)).second) {
      return Status::Internal("duplicate undirected edge (" +
                              std::to_string(e.u) + ", " +
                              std::to_string(e.v) + ")");
    }
    // Symmetry of the adjacency index: both endpoints list this edge (a
    // self loop is listed twice at its single endpoint, matching AddEdge).
    for (size_t endpoint : {e.u, e.v}) {
      const auto& adj = adjacency_[endpoint];
      const long expected = e.u == e.v ? 2 : 1;
      if (std::count(adj.begin(), adj.end(), idx) != expected) {
        return Status::Internal("edge " + std::to_string(idx) +
                                " not indexed symmetrically at node " +
                                std::to_string(endpoint));
      }
      if (e.u == e.v) break;
    }
  }
  size_t adjacency_refs = 0;
  for (size_t u = 0; u < adjacency_.size(); ++u) {
    for (size_t idx : adjacency_[u]) {
      if (idx >= edges_.size()) {
        return Status::Internal("adjacency entry points past the edge list");
      }
      const Edge& e = edges_[idx];
      if (e.u != u && e.v != u) {
        return Status::Internal("node " + std::to_string(u) +
                                " lists an edge it does not touch");
      }
      ++adjacency_refs;
    }
  }
  if (adjacency_refs != 2 * edges_.size()) {
    return Status::Internal("adjacency reference count inconsistent");
  }
  return Status::Ok();
}

std::pair<std::vector<int>, int> WeightedGraph::ConnectedComponents() const {
  UnionFind uf(node_count_);
  for (const Edge& e : edges_) uf.Union(e.u, e.v);
  std::vector<int> labels = uf.Labels();
  return {std::move(labels), static_cast<int>(uf.num_sets())};
}

}  // namespace vrec::graph
