#ifndef VREC_GRAPH_KMEANS_H_
#define VREC_GRAPH_KMEANS_H_

#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace vrec::graph {

/// Result of a k-means run.
struct KMeansResult {
  /// Cluster label (0..k-1) per point.
  std::vector<int> labels;
  /// Final centroids, k rows of dim values.
  std::vector<std::vector<double>> centroids;
  /// Sum of squared distances of points to their centroid.
  double inertia = 0.0;
  int iterations = 0;
};

/// Lloyd's algorithm with k-means++ seeding, used for the final step of the
/// spectral-clustering baseline (cluster rows of the eigenvector embedding).
[[nodiscard]]
StatusOr<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                              int k, Rng* rng, int max_iterations = 100);

}  // namespace vrec::graph

#endif  // VREC_GRAPH_KMEANS_H_
