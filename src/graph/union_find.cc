#include "graph/union_find.h"

#include <numeric>

namespace vrec::graph {

UnionFind::UnionFind(size_t n) : parent_(n), size_(n, 1), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), 0);
}

size_t UnionFind::Find(size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(size_t a, size_t b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --num_sets_;
  return true;
}

size_t UnionFind::SetSize(size_t x) { return size_[Find(x)]; }

std::vector<int> UnionFind::Labels() {
  std::vector<int> labels(parent_.size(), -1);
  std::vector<int> remap(parent_.size(), -1);
  int next = 0;
  for (size_t i = 0; i < parent_.size(); ++i) {
    const size_t root = Find(i);
    if (remap[root] < 0) remap[root] = next++;
    labels[i] = remap[root];
  }
  return labels;
}

}  // namespace vrec::graph
