#include "graph/dense_matrix.h"

namespace vrec::graph {

DenseMatrix::DenseMatrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

DenseMatrix DenseMatrix::Identity(size_t n) {
  DenseMatrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  DenseMatrix out(rows_, other.cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = at(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) += a * other.at(k, c);
      }
    }
  }
  return out;
}

std::vector<double> DenseMatrix::Column(size_t c) const {
  std::vector<double> col(rows_);
  for (size_t r = 0; r < rows_; ++r) col[r] = at(r, c);
  return col;
}

}  // namespace vrec::graph
