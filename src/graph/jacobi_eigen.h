#ifndef VREC_GRAPH_JACOBI_EIGEN_H_
#define VREC_GRAPH_JACOBI_EIGEN_H_

#include <vector>

#include "graph/dense_matrix.h"
#include "util/status.h"

namespace vrec::graph {

/// Full eigen-decomposition of a symmetric matrix.
struct EigenResult {
  /// Eigenvalues in ascending order.
  std::vector<double> values;
  /// Column i of `vectors` is the unit eigenvector for values[i].
  DenseMatrix vectors;
};

/// Cyclic Jacobi rotation method for symmetric matrices. O(n^3) per sweep;
/// intended for the spectral-clustering baseline where n is the sampled
/// user count (hundreds), not the full community.
/// `tolerance` bounds the squared Frobenius mass of the off-diagonal at
/// convergence; Jacobi converges quadratically, so the tight default costs
/// at most a sweep or two extra.
[[nodiscard]]
StatusOr<EigenResult> JacobiEigenSymmetric(const DenseMatrix& m,
                                           int max_sweeps = 64,
                                           double tolerance = 1e-22);

}  // namespace vrec::graph

#endif  // VREC_GRAPH_JACOBI_EIGEN_H_
