#ifndef VREC_GRAPH_UNION_FIND_H_
#define VREC_GRAPH_UNION_FIND_H_

#include <cstddef>
#include <vector>

namespace vrec::graph {

/// Disjoint-set forest with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(size_t n);

  /// Representative of x's set.
  size_t Find(size_t x);

  /// Merges the sets of a and b; returns true if they were distinct.
  bool Union(size_t a, size_t b);

  /// Number of disjoint sets.
  size_t num_sets() const { return num_sets_; }

  /// Size of the set containing x.
  size_t SetSize(size_t x);

  /// Dense component label (0..num_sets-1) per element, stable across calls
  /// only if no unions happen in between.
  std::vector<int> Labels();

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
  size_t num_sets_;
};

}  // namespace vrec::graph

#endif  // VREC_GRAPH_UNION_FIND_H_
