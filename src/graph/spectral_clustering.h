#ifndef VREC_GRAPH_SPECTRAL_CLUSTERING_H_
#define VREC_GRAPH_SPECTRAL_CLUSTERING_H_

#include <vector>

#include "graph/weighted_graph.h"
#include "util/random.h"
#include "util/status.h"

namespace vrec::graph {

/// Normalized spectral clustering (Ng-Jordan-Weiss variant, per von Luxburg's
/// tutorial that the paper cites as the "best practice" competitor for
/// sub-community extraction):
///   1. symmetric-normalized Laplacian L = I - D^-1/2 W D^-1/2
///   2. rows of the k smallest eigenvectors, row-normalized
///   3. k-means on the embedded rows.
/// Returns one cluster label per node. Isolated nodes embed at the origin.
[[nodiscard]]
StatusOr<std::vector<int>> SpectralClustering(const WeightedGraph& graph,
                                              int k, Rng* rng);

}  // namespace vrec::graph

#endif  // VREC_GRAPH_SPECTRAL_CLUSTERING_H_
