#include "graph/jacobi_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace vrec::graph {

StatusOr<EigenResult> JacobiEigenSymmetric(const DenseMatrix& m,
                                           int max_sweeps, double tolerance) {
  if (m.rows() != m.cols()) {
    return Status::InvalidArgument("matrix must be square");
  }
  const size_t n = m.rows();
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = r + 1; c < n; ++c) {
      if (std::abs(m.at(r, c) - m.at(c, r)) > 1e-8) {
        return Status::InvalidArgument("matrix must be symmetric");
      }
    }
  }

  DenseMatrix a = m;
  DenseMatrix v = DenseMatrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius mass.
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += a.at(p, q) * a.at(p, q);
    }
    if (off <= tolerance) break;

    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a.at(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = a.at(p, p);
        const double aqq = a.at(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the rotation to rows/columns p and q of A.
        for (size_t i = 0; i < n; ++i) {
          const double aip = a.at(i, p);
          const double aiq = a.at(i, q);
          a.at(i, p) = c * aip - s * aiq;
          a.at(i, q) = s * aip + c * aiq;
        }
        for (size_t i = 0; i < n; ++i) {
          const double api = a.at(p, i);
          const double aqi = a.at(q, i);
          a.at(p, i) = c * api - s * aqi;
          a.at(q, i) = s * api + c * aqi;
        }
        // Accumulate the eigenvector rotation.
        for (size_t i = 0; i < n; ++i) {
          const double vip = v.at(i, p);
          const double viq = v.at(i, q);
          v.at(i, p) = c * vip - s * viq;
          v.at(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  // Sort eigenpairs ascending by value.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&a](size_t x, size_t y) { return a.at(x, x) < a.at(y, y); });

  EigenResult result;
  result.values.resize(n);
  result.vectors = DenseMatrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    result.values[i] = a.at(order[i], order[i]);
    for (size_t r = 0; r < n; ++r) {
      result.vectors.at(r, i) = v.at(r, order[i]);
    }
  }
  return result;
}

}  // namespace vrec::graph
