#include "graph/spectral_clustering.h"

#include <cmath>

#include "graph/dense_matrix.h"
#include "graph/jacobi_eigen.h"
#include "graph/kmeans.h"

namespace vrec::graph {

StatusOr<std::vector<int>> SpectralClustering(const WeightedGraph& graph,
                                              int k, Rng* rng) {
  const size_t n = graph.node_count();
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (static_cast<size_t>(k) > n) {
    return Status::InvalidArgument("k exceeds node count");
  }

  // Affinity and degree.
  DenseMatrix w(n, n, 0.0);
  std::vector<double> degree(n, 0.0);
  for (const Edge& e : graph.edges()) {
    w.at(e.u, e.v) += e.weight;
    w.at(e.v, e.u) += e.weight;
    degree[e.u] += e.weight;
    degree[e.v] += e.weight;
  }

  // Symmetric-normalized Laplacian.
  DenseMatrix laplacian(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const double norm =
          (degree[i] > 0 && degree[j] > 0)
              ? w.at(i, j) / std::sqrt(degree[i] * degree[j])
              : 0.0;
      laplacian.at(i, j) = (i == j ? 1.0 : 0.0) - norm;
    }
  }

  StatusOr<EigenResult> eigen = JacobiEigenSymmetric(laplacian);
  if (!eigen.ok()) return eigen.status();

  // Embed each node as the row of the k smallest eigenvectors, then
  // row-normalize (NJW step).
  std::vector<std::vector<double>> rows(n, std::vector<double>(
                                               static_cast<size_t>(k), 0.0));
  for (size_t i = 0; i < n; ++i) {
    double norm = 0.0;
    for (int c = 0; c < k; ++c) {
      const double v = eigen->vectors.at(i, static_cast<size_t>(c));
      rows[i][static_cast<size_t>(c)] = v;
      norm += v * v;
    }
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (double& v : rows[i]) v /= norm;
    }
  }

  StatusOr<KMeansResult> km = KMeans(rows, k, rng);
  if (!km.ok()) return km.status();
  return std::move(km->labels);
}

}  // namespace vrec::graph
