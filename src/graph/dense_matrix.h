#ifndef VREC_GRAPH_DENSE_MATRIX_H_
#define VREC_GRAPH_DENSE_MATRIX_H_

#include <cstddef>
#include <vector>

namespace vrec::graph {

/// Minimal dense row-major matrix of doubles — just enough linear algebra
/// for the spectral-clustering baseline (Laplacians and eigenvectors of a
/// few hundred nodes). Not a general-purpose BLAS.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(size_t rows, size_t cols, double fill = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }

  /// Identity matrix of size n.
  static DenseMatrix Identity(size_t n);

  DenseMatrix Transpose() const;
  DenseMatrix Multiply(const DenseMatrix& other) const;

  /// Extracts column c as a vector.
  std::vector<double> Column(size_t c) const;

  bool operator==(const DenseMatrix& other) const = default;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace vrec::graph

#endif  // VREC_GRAPH_DENSE_MATRIX_H_
