#ifndef VREC_GRAPH_WEIGHTED_GRAPH_H_
#define VREC_GRAPH_WEIGHTED_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace vrec::graph {

/// An undirected edge with a weight. Node ids are dense [0, node_count).
struct Edge {
  size_t u = 0;
  size_t v = 0;
  double weight = 0.0;

  bool operator==(const Edge& other) const = default;
};

/// Undirected weighted multigraph-free graph stored as an edge list with an
/// adjacency index. This is the substrate of the paper's User Interest
/// Graph: nodes are social users, edge weight = number of co-commented
/// videos.
class WeightedGraph {
 public:
  explicit WeightedGraph(size_t node_count = 0);

  size_t node_count() const { return node_count_; }
  size_t edge_count() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Adds an undirected edge; if (u, v) exists its weight is increased by
  /// `weight` instead (the UIG accumulates co-interest counts).
  void AddEdge(size_t u, size_t v, double weight);

  /// Current weight of edge (u, v); 0 if absent.
  double EdgeWeight(size_t u, size_t v) const;

  /// Neighbors of u as (neighbor, weight) pairs.
  std::vector<std::pair<size_t, double>> Neighbors(size_t u) const;

  /// Connected-component label per node (dense, 0-based) and the component
  /// count.
  std::pair<std::vector<int>, int> ConnectedComponents() const;

  /// Grows the node set to at least `n` nodes.
  void EnsureNodeCount(size_t n);

  /// Structural audit: edge endpoints in range, no duplicate undirected
  /// (u, v) pairs, and the adjacency index symmetric — every edge appears in
  /// both endpoints' adjacency lists and nowhere else. O(V + E).
  [[nodiscard]]
  Status CheckInvariants() const;

 private:
  size_t node_count_;
  std::vector<Edge> edges_;
  // adjacency_[u] holds indices into edges_.
  std::vector<std::vector<size_t>> adjacency_;
};

}  // namespace vrec::graph

#endif  // VREC_GRAPH_WEIGHTED_GRAPH_H_
