#include "graph/kmeans.h"

#include <cmath>
#include <limits>

namespace vrec::graph {
namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

}  // namespace

StatusOr<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                              int k, Rng* rng, int max_iterations) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (points.empty()) return Status::InvalidArgument("no points");
  if (static_cast<size_t>(k) > points.size()) {
    return Status::InvalidArgument("k exceeds point count");
  }
  const size_t n = points.size();
  const size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("inconsistent point dimensionality");
    }
  }

  // k-means++ seeding.
  std::vector<std::vector<double>> centroids;
  centroids.reserve(static_cast<size_t>(k));
  centroids.push_back(
      points[static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1))]);
  std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());
  while (centroids.size() < static_cast<size_t>(k)) {
    for (size_t i = 0; i < n; ++i) {
      min_d2[i] = std::min(min_d2[i],
                           SquaredDistance(points[i], centroids.back()));
    }
    double total = 0.0;
    for (double d : min_d2) total += d;
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids; pick uniformly.
      centroids.push_back(points[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(n) - 1))]);
      continue;
    }
    centroids.push_back(points[static_cast<size_t>(rng->Weighted(min_d2))]);
  }

  KMeansResult result;
  result.labels.assign(n, 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    // Assign.
    for (size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        const double d =
            SquaredDistance(points[i], centroids[static_cast<size_t>(c)]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.labels[i] != best) {
        result.labels[i] = best;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;
    // Update.
    std::vector<std::vector<double>> sums(
        static_cast<size_t>(k), std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(static_cast<size_t>(k), 0);
    for (size_t i = 0; i < n; ++i) {
      const auto c = static_cast<size_t>(result.labels[i]);
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    for (size_t c = 0; c < static_cast<size_t>(k); ++c) {
      if (counts[c] == 0) continue;  // keep the stale centroid
      for (size_t d = 0; d < dim; ++d) {
        centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia += SquaredDistance(
        points[i], centroids[static_cast<size_t>(result.labels[i])]);
  }
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace vrec::graph
