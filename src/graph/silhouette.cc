#include "graph/silhouette.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vrec::graph {

double SilhouetteCoefficient(const std::vector<int>& labels,
                             const DistanceFn& distance) {
  const size_t n = labels.size();
  if (n < 2) return 0.0;
  int num_clusters = 0;
  for (int l : labels) num_clusters = std::max(num_clusters, l + 1);
  if (num_clusters < 2) return 0.0;

  std::vector<size_t> cluster_size(static_cast<size_t>(num_clusters), 0);
  for (int l : labels) ++cluster_size[static_cast<size_t>(l)];

  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const auto ci = static_cast<size_t>(labels[i]);
    if (cluster_size[ci] <= 1) continue;  // s(i) = 0 for singletons

    // Mean distance from i to each cluster.
    std::vector<double> sum(static_cast<size_t>(num_clusters), 0.0);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sum[static_cast<size_t>(labels[j])] += distance(i, j);
    }
    const double a =
        sum[ci] / static_cast<double>(cluster_size[ci] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < static_cast<size_t>(num_clusters); ++c) {
      if (c == ci || cluster_size[c] == 0) continue;
      b = std::min(b, sum[c] / static_cast<double>(cluster_size[c]));
    }
    if (!std::isfinite(b)) continue;
    const double denom = std::max(a, b);
    total += denom > 0 ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(n);
}

}  // namespace vrec::graph
