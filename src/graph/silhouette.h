#ifndef VREC_GRAPH_SILHOUETTE_H_
#define VREC_GRAPH_SILHOUETTE_H_

#include <functional>
#include <vector>

namespace vrec::graph {

/// Pairwise distance callback between elements i and j.
using DistanceFn = std::function<double(size_t, size_t)>;

/// Mean Silhouette Coefficient of a clustering (Kaufman-Rousseeuw; the
/// paper's Section 4.2.2 quality metric: ours 0.498 vs spectral 0.242).
///
/// For each element i in a cluster of size > 1:
///   a(i) = mean distance to its own cluster,
///   b(i) = min over other clusters of the mean distance to that cluster,
///   s(i) = (b - a) / max(a, b).
/// Singleton clusters contribute s(i) = 0. Returns the mean s(i); 0 for
/// degenerate inputs (single cluster or empty).
double SilhouetteCoefficient(const std::vector<int>& labels,
                             const DistanceFn& distance);

}  // namespace vrec::graph

#endif  // VREC_GRAPH_SILHOUETTE_H_
