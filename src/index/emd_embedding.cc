#include "index/emd_embedding.h"

#include <algorithm>
#include <cmath>

namespace vrec::index {

std::vector<double> EmbedSignature(const signature::CuboidSignature& sig,
                                   const EmbeddingOptions& options) {
  const int d = options.dims;
  std::vector<double> out(static_cast<size_t>(d), 0.0);
  const double span = options.domain_max - options.domain_min;
  const double bin_width = span / static_cast<double>(d);
  // out[i] = total mass with value <= right edge of bin i, scaled by the
  // bin width so that sum_i |out_a[i] - out_b[i]| integrates |CDF_a - CDF_b|.
  for (const signature::Cuboid& c : sig) {
    const double pos = (c.value - options.domain_min) / span;
    const int first_bin =
        std::clamp(static_cast<int>(std::floor(pos * d)), 0, d - 1);
    for (int i = first_bin; i < d; ++i) {
      out[static_cast<size_t>(i)] += c.weight * bin_width;
    }
  }
  return out;
}

std::vector<double> EmbedPrepared(const signature::PreparedSignature& sig,
                                  const EmbeddingOptions& options) {
  const int d = options.dims;
  std::vector<double> out(static_cast<size_t>(d), 0.0);
  const double span = options.domain_max - options.domain_min;
  const double bin_width = span / static_cast<double>(d);
  // Values are sorted, so one pointer sweeps the support while the bin index
  // advances; the prefix-summed cdf supplies the accumulated mass in O(1).
  size_t ptr = 0;
  for (int i = 0; i < d; ++i) {
    while (ptr < sig.size()) {
      const double pos = (sig.values[ptr] - options.domain_min) / span;
      const int first_bin =
          std::clamp(static_cast<int>(std::floor(pos * d)), 0, d - 1);
      if (first_bin > i) break;
      ++ptr;
    }
    out[static_cast<size_t>(i)] = ptr > 0 ? sig.cdf[ptr - 1] * bin_width : 0.0;
  }
  return out;
}

double EmbeddedL1(const std::vector<double>& a,
                  const std::vector<double>& b) {
  double d = 0.0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) d += std::abs(a[i] - b[i]);
  return d;
}

}  // namespace vrec::index
