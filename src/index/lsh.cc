#include "index/lsh.h"

#include <algorithm>
#include <cmath>

namespace vrec::index {

L1Lsh::L1Lsh(const Options& options) : options_(options) {
  Rng rng(options.seed);
  projections_.resize(static_cast<size_t>(options.num_hashes));
  offsets_.resize(static_cast<size_t>(options.num_hashes));
  for (int i = 0; i < options.num_hashes; ++i) {
    auto& proj = projections_[static_cast<size_t>(i)];
    proj.resize(static_cast<size_t>(options.input_dims));
    for (double& p : proj) p = rng.Cauchy();
    offsets_[static_cast<size_t>(i)] = rng.Uniform(0.0, options.width);
  }
}

std::vector<uint32_t> L1Lsh::Keys(const std::vector<double>& embedded) const {
  const uint32_t max_key =
      (options_.bits_per_key >= 32)
          ? UINT32_MAX
          : ((1u << options_.bits_per_key) - 1);
  // Center the quantized projections in the key range so both signs of the
  // projection land in-bounds.
  const int64_t center = static_cast<int64_t>(max_key / 2);

  std::vector<uint32_t> keys(projections_.size());
  for (size_t i = 0; i < projections_.size(); ++i) {
    double dot = offsets_[i];
    const auto& proj = projections_[i];
    const size_t n = std::min(proj.size(), embedded.size());
    for (size_t d = 0; d < n; ++d) dot += proj[d] * embedded[d];
    const int64_t q =
        static_cast<int64_t>(std::floor(dot / options_.width)) + center;
    keys[i] = static_cast<uint32_t>(
        std::clamp<int64_t>(q, 0, static_cast<int64_t>(max_key)));
  }
  return keys;
}

}  // namespace vrec::index
