#include "index/lsb_index.h"

#include <string>
#include <utility>

#include "index/zorder.h"

namespace vrec::index {

LsbIndex::LsbIndex() : LsbIndex(Options{}) {}

LsbIndex::LsbIndex(const Options& options) : options_(options) {
  hashes_.reserve(static_cast<size_t>(options_.num_trees));
  trees_.reserve(static_cast<size_t>(options_.num_trees));
  for (int t = 0; t < options_.num_trees; ++t) {
    L1Lsh::Options lsh = options_.lsh;
    lsh.input_dims = options_.embedding.dims;
    lsh.seed = options_.lsh.seed + static_cast<uint64_t>(t) * 7919;
    hashes_.emplace_back(lsh);
    trees_.emplace_back(options_.tree_fanout);
  }
}

uint64_t LsbIndex::ZValue(size_t tree,
                          const std::vector<double>& embedded) const {
  const std::vector<uint32_t> keys = hashes_[tree].Keys(embedded);
  return ZOrderInterleave(keys, hashes_[tree].options().bits_per_key);
}

void LsbIndex::AddVideo(int64_t video_id,
                        const signature::SignatureSeries& series) {
  for (size_t s = 0; s < series.size(); ++s) {
    const std::vector<double> embedded =
        EmbedSignature(series[s], options_.embedding);
    for (size_t t = 0; t < trees_.size(); ++t) {
      trees_[t].Insert(ZValue(t, embedded),
                       {video_id, static_cast<uint32_t>(s)});
    }
    ++indexed_;
  }
}

void LsbIndex::AddVideosBulk(
    const std::vector<std::pair<int64_t, const signature::SignatureSeries*>>&
        videos,
    util::ThreadPool* pool) {
  // Flatten to one (video, signature) entry per indexed point so the
  // embedding work parallelises evenly regardless of series length.
  struct Flat {
    int64_t video_id;
    uint32_t sig_index;
    const signature::CuboidSignature* signature;
  };
  std::vector<Flat> flat;
  for (const auto& [vid, series] : videos) {
    for (size_t s = 0; s < series->size(); ++s) {
      flat.push_back({vid, static_cast<uint32_t>(s), &(*series)[s]});
    }
  }

  std::vector<std::vector<double>> embedded(flat.size());
  util::ParallelFor(pool, flat.size(), [&](size_t i) {
    embedded[i] = EmbedSignature(*flat[i].signature, options_.embedding);
  });

  // One task per tree: Z-values differ per tree (independent LSH seeds),
  // and each tree is written by exactly one thread.
  util::ParallelFor(pool, trees_.size(), [&](size_t t) {
    for (size_t i = 0; i < flat.size(); ++i) {
      trees_[t].Insert(ZValue(t, embedded[i]),
                       {flat[i].video_id, flat[i].sig_index});
    }
  });
  indexed_ += flat.size();
}

void LsbIndex::AddVideosBulkPrepared(
    const std::vector<std::pair<int64_t, const signature::PreparedSeries*>>&
        videos,
    util::ThreadPool* pool) {
  struct Flat {
    int64_t video_id;
    uint32_t sig_index;
    const signature::PreparedSignature* signature;
  };
  std::vector<Flat> flat;
  for (const auto& [vid, series] : videos) {
    for (size_t s = 0; s < series->size(); ++s) {
      flat.push_back({vid, static_cast<uint32_t>(s), &(*series)[s]});
    }
  }

  std::vector<std::vector<double>> embedded(flat.size());
  util::ParallelFor(pool, flat.size(), [&](size_t i) {
    embedded[i] = EmbedPrepared(*flat[i].signature, options_.embedding);
  });

  util::ParallelFor(pool, trees_.size(), [&](size_t t) {
    for (size_t i = 0; i < flat.size(); ++i) {
      trees_[t].Insert(ZValue(t, embedded[i]),
                       {flat[i].video_id, flat[i].sig_index});
    }
  });
  indexed_ += flat.size();
}

void LsbIndex::ProbeEmbedded(const std::vector<double>& embedded, int probes,
                             std::unordered_map<int64_t, int>& hits) const {
  for (size_t t = 0; t < trees_.size(); ++t) {
    const uint64_t z = ZValue(t, embedded);
    // Expand outwards from the query position: entries adjacent in Z-order
    // share the longest common prefix with the query.
    BPlusTree::Cursor right = trees_[t].LowerBound(z);
    BPlusTree::Cursor left = right;
    if (left.valid()) {
      left.Prev();
    } else {
      left = trees_[t].Last();
    }
    for (int p = 0; p < probes; ++p) {
      if (right.valid()) {
        ++hits[right.Get().payload.video_id];
        right.Next();
      }
      if (left.valid()) {
        ++hits[left.Get().payload.video_id];
        left.Prev();
      }
    }
  }
}

std::unordered_map<int64_t, int> LsbIndex::Candidates(
    const signature::CuboidSignature& query, int probes) const {
  std::unordered_map<int64_t, int> hits;
  ProbeEmbedded(EmbedSignature(query, options_.embedding), probes, hits);
  return hits;
}

std::unordered_map<int64_t, int> LsbIndex::CandidatesPrepared(
    const signature::PreparedSignature& query, int probes) const {
  std::unordered_map<int64_t, int> hits;
  ProbeEmbedded(EmbedPrepared(query, options_.embedding), probes, hits);
  return hits;
}

std::unordered_map<int64_t, int> LsbIndex::CandidatesForSeries(
    const signature::SignatureSeries& series, int probes) const {
  std::unordered_map<int64_t, int> hits;
  for (const auto& sig : series) {
    ProbeEmbedded(EmbedSignature(sig, options_.embedding), probes, hits);
  }
  return hits;
}

std::unordered_map<int64_t, int> LsbIndex::CandidatesForPreparedSeries(
    const signature::PreparedSeries& series, int probes) const {
  std::unordered_map<int64_t, int> hits;
  for (const auto& sig : series) {
    ProbeEmbedded(EmbedPrepared(sig, options_.embedding), probes, hits);
  }
  return hits;
}

std::vector<BPlusTree::Entry> LsbIndex::TreeEntries(size_t t) const {
  return trees_[t].Scan();
}

Status LsbIndex::RestoreTrees(
    const std::vector<std::vector<BPlusTree::Entry>>& per_tree,
    size_t indexed) {
  if (per_tree.size() != trees_.size()) {
    return Status::InvalidArgument(
        "restored LSB forest has " + std::to_string(per_tree.size()) +
        " trees, expected " + std::to_string(trees_.size()));
  }
  std::vector<BPlusTree> trees;
  trees.reserve(per_tree.size());
  for (size_t t = 0; t < per_tree.size(); ++t) {
    if (per_tree[t].size() != indexed) {
      return Status::InvalidArgument(
          "restored LSB tree " + std::to_string(t) + " holds " +
          std::to_string(per_tree[t].size()) + " entries, expected " +
          std::to_string(indexed));
    }
    BPlusTree tree(options_.tree_fanout);
    if (const Status s = tree.BulkLoad(per_tree[t]); !s.ok()) return s;
    trees.push_back(std::move(tree));
  }
  trees_ = std::move(trees);
  indexed_ = indexed;
  return Status::Ok();
}

Status LsbIndex::CheckInvariants() const {
  const auto expected = static_cast<size_t>(options_.num_trees);
  if (trees_.size() != expected || hashes_.size() != expected) {
    return Status::Internal(
        "LSB forest size mismatch: " + std::to_string(trees_.size()) +
        " trees / " + std::to_string(hashes_.size()) + " hash families for " +
        std::to_string(options_.num_trees) + " configured");
  }
  for (size_t t = 0; t < trees_.size(); ++t) {
    if (trees_[t].size() != indexed_) {
      return Status::Internal(
          "tree " + std::to_string(t) + " holds " +
          std::to_string(trees_[t].size()) + " entries, expected " +
          std::to_string(indexed_) + " (one per indexed signature)");
    }
    if (const Status s = trees_[t].CheckInvariants(); !s.ok()) {
      return Status::Internal("tree " + std::to_string(t) + ": " +
                              s.message());
    }
  }
  return Status::Ok();
}

}  // namespace vrec::index
