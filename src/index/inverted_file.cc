#include "index/inverted_file.h"

#include <algorithm>
#include <unordered_map>

namespace vrec::index {

const std::vector<InvertedFile::Posting> InvertedFile::kEmpty = {};

void InvertedFile::Add(int community, int64_t video_id, double weight) {
  auto& list = lists_[community];
  for (Posting& p : list) {
    if (p.video_id == video_id) {
      p.weight += weight;
      return;
    }
  }
  list.push_back({video_id, weight});
}

void InvertedFile::Append(int community, int64_t video_id, double weight) {
  lists_[community].push_back({video_id, weight});
}

void InvertedFile::RemoveVideoFromCommunity(int community, int64_t video_id) {
  const auto it = lists_.find(community);
  if (it == lists_.end()) return;
  auto& list = it->second;
  list.erase(std::remove_if(list.begin(), list.end(),
                            [video_id](const Posting& p) {
                              return p.video_id == video_id;
                            }),
             list.end());
  if (list.empty()) lists_.erase(it);
}

void InvertedFile::RemoveCommunity(int community) { lists_.erase(community); }

const std::vector<InvertedFile::Posting>& InvertedFile::Postings(
    int community) const {
  const auto it = lists_.find(community);
  return it == lists_.end() ? kEmpty : it->second;
}

std::vector<std::pair<int64_t, double>> InvertedFile::Candidates(
    const std::vector<double>& query_histogram) const {
  std::unordered_map<int64_t, double> scores;
  for (size_t c = 0; c < query_histogram.size(); ++c) {
    const double mass = query_histogram[c];
    if (mass <= 0.0) continue;
    const auto it = lists_.find(static_cast<int>(c));
    if (it == lists_.end()) continue;
    for (const Posting& p : it->second) {
      scores[p.video_id] += mass * p.weight;
    }
  }
  std::vector<std::pair<int64_t, double>> out(scores.begin(), scores.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace vrec::index
