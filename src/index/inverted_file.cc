#include "index/inverted_file.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "util/check.h"

namespace vrec::index {

namespace {

// First posting with video_id >= `video_id` in a sorted list.
std::vector<InvertedFile::Posting>::iterator PostingLowerBound(
    std::vector<InvertedFile::Posting>& list, int64_t video_id) {
  return std::lower_bound(
      list.begin(), list.end(), video_id,
      [](const InvertedFile::Posting& p, int64_t id) { return p.video_id < id; });
}

}  // namespace

const std::vector<InvertedFile::Posting> InvertedFile::kEmpty = {};

void InvertedFile::Add(int community, int64_t video_id, double weight) {
  auto& list = lists_[community];
  const auto it = PostingLowerBound(list, video_id);
  if (it != list.end() && it->video_id == video_id) {
    it->weight += weight;
    return;
  }
  list.insert(it, {video_id, weight});
}

void InvertedFile::Append(int community, int64_t video_id, double weight) {
  auto& list = lists_[community];
  if (list.empty() || list.back().video_id < video_id) {
    list.push_back({video_id, weight});
    return;
  }
  const auto it = PostingLowerBound(list, video_id);
  VREC_DCHECK(it == list.end() || it->video_id != video_id);
  list.insert(it, {video_id, weight});
}

void InvertedFile::RemoveVideoFromCommunity(int community, int64_t video_id) {
  const auto it = lists_.find(community);
  if (it == lists_.end()) return;
  auto& list = it->second;
  list.erase(std::remove_if(list.begin(), list.end(),
                            [video_id](const Posting& p) {
                              return p.video_id == video_id;
                            }),
             list.end());
  if (list.empty()) lists_.erase(it);
}

void InvertedFile::RemoveCommunity(int community) { lists_.erase(community); }

const std::vector<InvertedFile::Posting>& InvertedFile::Postings(
    int community) const {
  const auto it = lists_.find(community);
  return it == lists_.end() ? kEmpty : it->second;
}

Status InvertedFile::CheckInvariants() const {
  for (const auto& [community, list] : lists_) {
    if (list.empty()) {
      return Status::Internal("community " + std::to_string(community) +
                              " holds an empty posting list");
    }
    for (size_t i = 0; i < list.size(); ++i) {
      if (!std::isfinite(list[i].weight) || list[i].weight <= 0.0) {
        return Status::Internal(
            "community " + std::to_string(community) + " posting for video " +
            std::to_string(list[i].video_id) + " has non-positive weight");
      }
      if (i > 0 && list[i - 1].video_id >= list[i].video_id) {
        return Status::Internal("community " + std::to_string(community) +
                                " postings not strictly sorted at video " +
                                std::to_string(list[i].video_id));
      }
    }
  }
  return Status::Ok();
}

std::vector<std::pair<int64_t, double>> InvertedFile::Candidates(
    const std::vector<double>& query_histogram) const {
  std::vector<std::pair<int, double>> bins;
  for (size_t c = 0; c < query_histogram.size(); ++c) {
    if (query_histogram[c] > 0.0) {
      bins.emplace_back(static_cast<int>(c), query_histogram[c]);
    }
  }
  return CandidatesSparse(bins);
}

std::vector<std::pair<int64_t, double>> InvertedFile::CandidatesSparse(
    const std::vector<std::pair<int, double>>& query_bins,
    std::unordered_map<int64_t, double>* min_overlap) const {
  std::unordered_map<int64_t, double> scores;
  for (const auto& [bin, mass] : query_bins) {
    if (mass <= 0.0) continue;
    const auto it = lists_.find(bin);
    if (it == lists_.end()) continue;
    for (const Posting& p : it->second) {
      scores[p.video_id] += mass * p.weight;
      if (min_overlap != nullptr) {
        (*min_overlap)[p.video_id] += std::min(mass, p.weight);
      }
    }
  }
  std::vector<std::pair<int64_t, double>> out(scores.begin(), scores.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace vrec::index
