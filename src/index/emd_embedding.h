#ifndef VREC_INDEX_EMD_EMBEDDING_H_
#define VREC_INDEX_EMD_EMBEDDING_H_

#include <vector>

#include "signature/cuboid_signature.h"
#include "signature/prepared_signature.h"

namespace vrec::index {

/// Embeds cuboid signatures into L1 space so that LSH / Z-order indexing can
/// be applied ("we embed EMD-metric into L1-norm space like [35]").
///
/// For the paper's 1-dimensional cuboids the embedding is the classic CDF
/// transform: sample the signature's weight CDF on a fixed grid over the
/// value domain; then L1 distance between two embedded vectors multiplied by
/// the bin width converges to the exact EMD as the grid refines (EMD in 1D
/// *is* the area between the CDFs).
struct EmbeddingOptions {
  /// Value domain covered by the grid. Cuboid values are mean intensity
  /// changes, bounded by [-255, 255] by construction.
  double domain_min = -255.0;
  double domain_max = 255.0;
  /// Grid resolution (embedding dimensionality).
  int dims = 32;
};

/// The embedded vector: dims entries, entry i = (mass with value <= grid_i)
/// scaled by sqrt of nothing — plain CDF sample scaled by bin width so that
/// L1(e(a), e(b)) approximates EMD(a, b).
std::vector<double> EmbedSignature(const signature::CuboidSignature& sig,
                                   const EmbeddingOptions& options = {});

/// Same embedding from a prepared signature. The value-sorted support and
/// prefix-summed weights reduce the cost from O(n * dims) bin fills to a
/// single O(n + dims) sweep: each grid point reads the CDF directly.
std::vector<double> EmbedPrepared(const signature::PreparedSignature& sig,
                                  const EmbeddingOptions& options = {});

/// L1 distance between two embedded vectors (= approximate EMD).
double EmbeddedL1(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace vrec::index

#endif  // VREC_INDEX_EMD_EMBEDDING_H_
