#ifndef VREC_INDEX_BPLUS_TREE_H_
#define VREC_INDEX_BPLUS_TREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "util/status.h"

namespace vrec::index {

/// In-memory B+-tree over 64-bit keys (Z-order values), with doubly-linked
/// leaves — the storage layer of the LSB index of Tao et al. (SIGMOD'09)
/// that the paper adopts for content-candidate retrieval. Duplicate keys are
/// allowed; each entry carries the (video id, signature index) payload so a
/// leaf hit identifies which video's q-gram produced the Z-value.
class BPlusTree {
 private:
  struct Node;

 public:
  struct Payload {
    int64_t video_id = -1;
    uint32_t sig_index = 0;
  };

  struct Entry {
    uint64_t key = 0;
    Payload payload;
  };

  /// `fanout` is the maximum number of keys per node (>= 4).
  explicit BPlusTree(int fanout = 64);
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;

  void Insert(uint64_t key, Payload payload);

  /// Bottom-up O(n) bulk build from entries already in key order (e.g. a
  /// Scan() of another tree, or a snapshot section). Requires an empty
  /// tree. Leaves are filled left to right, so the leaf chain reproduces
  /// `entries` exactly — cursor walks over a bulk-loaded tree visit the
  /// same entry sequence as over the insert-built original, which is what
  /// makes snapshot restore probe-identical.
  [[nodiscard]]
  Status BulkLoad(const std::vector<Entry>& entries);

  size_t size() const { return size_; }
  int height() const { return height_; }
  size_t node_count() const { return arena_.size(); }

  /// Bidirectional cursor over entries in key order.
  class Cursor {
   public:
    bool valid() const { return leaf_ != nullptr; }
    const Entry Get() const;
    /// Moves right / left in key order; invalidates at the ends.
    void Next();
    void Prev();

   private:
    friend class BPlusTree;
    Node* leaf_ = nullptr;
    size_t slot_ = 0;
  };

  /// Cursor at the first entry with key >= `key`, or invalid if none.
  Cursor LowerBound(uint64_t key) const;
  /// Cursor at the smallest / largest entry; invalid when empty.
  Cursor First() const;
  Cursor Last() const;

  /// All entries in key order (test / diagnostic helper).
  std::vector<Entry> Scan() const;

  /// Structural audit: uniform leaf depth equal to height(), fanout bounds
  /// respected, separator keys bracket their subtrees, the leaf chain is
  /// doubly linked in key order, and the leaf entry total matches size().
  [[nodiscard]]
  Status CheckInvariants() const;

 private:
  Node* NewNode(bool is_leaf);
  // Inserts into the subtree; on split returns (separator, new right node).
  std::optional<std::pair<uint64_t, Node*>> InsertInto(Node* node,
                                                       uint64_t key,
                                                       const Payload& payload);

  int fanout_;
  size_t size_ = 0;
  int height_ = 1;
  Node* root_ = nullptr;
  std::vector<std::unique_ptr<Node>> arena_;
};

}  // namespace vrec::index

#endif  // VREC_INDEX_BPLUS_TREE_H_
