#ifndef VREC_INDEX_ZORDER_H_
#define VREC_INDEX_ZORDER_H_

#include <cstdint>
#include <vector>

namespace vrec::index {

/// Z-order (Morton) interleaving of m keys of `bits_per_key` bits each into
/// a single 64-bit value; the LSB-tree sorts points by this value so that a
/// long common Z-value prefix implies closeness in every hashed dimension.
/// Requires m * bits_per_key <= 64.
uint64_t ZOrderInterleave(const std::vector<uint32_t>& keys,
                          int bits_per_key);

/// Inverse of ZOrderInterleave (used by tests and diagnostics).
std::vector<uint32_t> ZOrderDeinterleave(uint64_t z, int num_keys,
                                         int bits_per_key);

/// Length (in interleaved bits) of the common prefix of two Z-values; 64
/// when equal. The LSB KNN search expands candidates in decreasing order of
/// this quantity.
int CommonPrefixLength(uint64_t a, uint64_t b);

}  // namespace vrec::index

#endif  // VREC_INDEX_ZORDER_H_
