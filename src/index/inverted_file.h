#ifndef VREC_INDEX_INVERTED_FILE_H_
#define VREC_INDEX_INVERTED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/status.h"

namespace vrec::index {

/// The k inverted files of Section 4.4: one posting list per sub-community
/// id, each listing the videos whose social descriptors contain users of
/// that sub-community (with the per-video user count as posting weight).
///
/// Class invariant (see CheckInvariants): every posting list is non-empty
/// and strictly sorted by ascending video id — so lists are duplicate-free
/// by construction and membership is binary-searchable.
class InvertedFile {
 public:
  struct Posting {
    int64_t video_id = -1;
    double weight = 0.0;  // #descriptor users in this sub-community
  };

  /// Adds (or accumulates) a posting: binary-searches the sorted list and
  /// either bumps the existing posting's weight or inserts at the right
  /// position (O(log n) search + O(n) shift).
  void Add(int community, int64_t video_id, double weight);

  /// Append fast path: the caller guarantees `video_id` has no existing
  /// posting in `community` (true after RemoveVideoFromCommunity, and for
  /// any build-from-scratch). Appending in ascending video-id order — the
  /// rebuild order — is O(1); out-of-order ids fall back to a sorted
  /// insert.
  void Append(int community, int64_t video_id, double weight);

  /// Drops every posting of `video_id` in `community` (descriptor refresh).
  void RemoveVideoFromCommunity(int community, int64_t video_id);

  /// Drops the whole posting list of a retired community id.
  void RemoveCommunity(int community);

  const std::vector<Posting>& Postings(int community) const;

  /// Social candidate generation: accumulates, for every video sharing a
  /// non-zero sub-community with the query histogram, the dot product of
  /// query mass and posting weight. Returns (video id, score) sorted by
  /// descending score. Delegates to CandidatesSparse over the histogram's
  /// non-zero bins, so both entry points run the identical arithmetic.
  std::vector<std::pair<int64_t, double>> Candidates(
      const std::vector<double>& query_histogram) const;

  /// Posting-driven form over a sparse query: only the query's non-zero
  /// bins' posting lists are walked, so videos sharing no sub-community
  /// with the query are never touched. `query_bins` must be (bin, mass)
  /// pairs sorted by bin with positive masses. When `min_overlap` is
  /// non-null it receives, per touched video, Σ min(query mass, posting
  /// weight) over the shared bins — Equation 6's numerator — accumulated
  /// term-at-a-time in the same single pass, which is what the
  /// recommender's SAR fast path scores candidates from.
  std::vector<std::pair<int64_t, double>> CandidatesSparse(
      const std::vector<std::pair<int, double>>& query_bins,
      std::unordered_map<int64_t, double>* min_overlap = nullptr) const;

  size_t community_count() const { return lists_.size(); }

  /// Snapshot accessor: the full community -> posting-list map, in
  /// ascending community order. Restoring via Append() in this order
  /// reproduces the structure exactly.
  const std::map<int, std::vector<Posting>>& lists() const { return lists_; }

  /// Verifies the class invariant: every list is non-empty and strictly
  /// sorted by video id (hence deduped), with finite positive weights.
  [[nodiscard]]
  Status CheckInvariants() const;

 private:
  std::map<int, std::vector<Posting>> lists_;
  static const std::vector<Posting> kEmpty;
};

}  // namespace vrec::index

#endif  // VREC_INDEX_INVERTED_FILE_H_
