#ifndef VREC_INDEX_INVERTED_FILE_H_
#define VREC_INDEX_INVERTED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace vrec::index {

/// The k inverted files of Section 4.4: one posting list per sub-community
/// id, each listing the videos whose social descriptors contain users of
/// that sub-community (with the per-video user count as posting weight).
class InvertedFile {
 public:
  struct Posting {
    int64_t video_id = -1;
    double weight = 0.0;  // #descriptor users in this sub-community
  };

  /// Adds (or accumulates) a posting. Scans the list for an existing
  /// posting of `video_id`, so a full rebuild through this path is
  /// quadratic in posting-list length — use Append when the caller can
  /// guarantee the video is not yet posted in `community`.
  void Add(int community, int64_t video_id, double weight);

  /// Append-only fast path: the caller guarantees `video_id` has no
  /// existing posting in `community` (true after RemoveVideoFromCommunity,
  /// and for any build-from-scratch), so no duplicate scan is needed.
  void Append(int community, int64_t video_id, double weight);

  /// Drops every posting of `video_id` in `community` (descriptor refresh).
  void RemoveVideoFromCommunity(int community, int64_t video_id);

  /// Drops the whole posting list of a retired community id.
  void RemoveCommunity(int community);

  const std::vector<Posting>& Postings(int community) const;

  /// Social candidate generation: accumulates, for every video sharing a
  /// non-zero sub-community with the query histogram, the dot product of
  /// query mass and posting weight. Returns (video id, score) sorted by
  /// descending score.
  std::vector<std::pair<int64_t, double>> Candidates(
      const std::vector<double>& query_histogram) const;

  size_t community_count() const { return lists_.size(); }

 private:
  std::map<int, std::vector<Posting>> lists_;
  static const std::vector<Posting> kEmpty;
};

}  // namespace vrec::index

#endif  // VREC_INDEX_INVERTED_FILE_H_
