#ifndef VREC_INDEX_LSH_H_
#define VREC_INDEX_LSH_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace vrec::index {

/// Locality-sensitive hashing for L1 (p-stable with Cauchy projections):
///   h_i(x) = floor((<a_i, x> + b_i) / width)
/// Each of the m functions yields a small non-negative integer key, clamped
/// to `bits_per_key` bits so the keys can be Z-order interleaved into the
/// LSB-tree key (Tao et al., SIGMOD'09).
class L1Lsh {
 public:
  struct Options {
    int num_hashes = 8;      // m
    int bits_per_key = 8;    // per-key resolution for Z-ordering
    double width = 4.0;      // quantization width W
    int input_dims = 32;     // embedded vector dimensionality
    uint64_t seed = 42;      // projection seed (shared across a tree)
  };

  explicit L1Lsh(const Options& options);

  /// The m clamped keys of an embedded vector.
  std::vector<uint32_t> Keys(const std::vector<double>& embedded) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  std::vector<std::vector<double>> projections_;  // m x input_dims, Cauchy
  std::vector<double> offsets_;                   // m, uniform in [0, width)
};

}  // namespace vrec::index

#endif  // VREC_INDEX_LSH_H_
