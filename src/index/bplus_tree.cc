#include "index/bplus_tree.h"

#include <algorithm>
#include <string>

namespace vrec::index {

struct BPlusTree::Node {
  bool is_leaf = true;
  std::vector<uint64_t> keys;
  // Internal nodes: children.size() == keys.size() + 1; subtree i holds
  // keys in [keys[i-1], keys[i]).
  std::vector<Node*> children;
  // Leaves: payloads parallel to keys; leaves are doubly linked.
  std::vector<Payload> payloads;
  Node* next = nullptr;
  Node* prev = nullptr;
};

BPlusTree::BPlusTree(int fanout) : fanout_(std::max(4, fanout)) {
  root_ = NewNode(/*is_leaf=*/true);
}

BPlusTree::~BPlusTree() = default;
BPlusTree::BPlusTree(BPlusTree&&) noexcept = default;
BPlusTree& BPlusTree::operator=(BPlusTree&&) noexcept = default;

BPlusTree::Node* BPlusTree::NewNode(bool is_leaf) {
  arena_.push_back(std::make_unique<Node>());
  arena_.back()->is_leaf = is_leaf;
  return arena_.back().get();
}

std::optional<std::pair<uint64_t, BPlusTree::Node*>> BPlusTree::InsertInto(
    Node* node, uint64_t key, const Payload& payload) {
  if (node->is_leaf) {
    const auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
    const auto idx = static_cast<size_t>(it - node->keys.begin());
    node->keys.insert(it, key);
    node->payloads.insert(node->payloads.begin() + static_cast<long>(idx),
                          payload);
    if (node->keys.size() <= static_cast<size_t>(fanout_)) return std::nullopt;

    // Split the leaf; the separator is the right half's first key.
    Node* right = NewNode(/*is_leaf=*/true);
    const size_t half = node->keys.size() / 2;
    right->keys.assign(node->keys.begin() + static_cast<long>(half),
                       node->keys.end());
    right->payloads.assign(node->payloads.begin() + static_cast<long>(half),
                           node->payloads.end());
    node->keys.resize(half);
    node->payloads.resize(half);
    right->next = node->next;
    right->prev = node;
    if (node->next != nullptr) node->next->prev = right;
    node->next = right;
    return std::make_pair(right->keys.front(), right);
  }

  // Internal: child index = number of separators <= key.
  const auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
  const auto idx = static_cast<size_t>(it - node->keys.begin());
  auto split = InsertInto(node->children[idx], key, payload);
  if (!split.has_value()) return std::nullopt;

  node->keys.insert(node->keys.begin() + static_cast<long>(idx),
                    split->first);
  node->children.insert(node->children.begin() + static_cast<long>(idx) + 1,
                        split->second);
  if (node->keys.size() <= static_cast<size_t>(fanout_)) return std::nullopt;

  // Split the internal node; the middle separator moves up.
  Node* right = NewNode(/*is_leaf=*/false);
  const size_t mid = node->keys.size() / 2;
  const uint64_t up = node->keys[mid];
  right->keys.assign(node->keys.begin() + static_cast<long>(mid) + 1,
                     node->keys.end());
  right->children.assign(node->children.begin() + static_cast<long>(mid) + 1,
                         node->children.end());
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  return std::make_pair(up, right);
}

void BPlusTree::Insert(uint64_t key, Payload payload) {
  auto split = InsertInto(root_, key, payload);
  if (split.has_value()) {
    Node* new_root = NewNode(/*is_leaf=*/false);
    new_root->keys.push_back(split->first);
    new_root->children.push_back(root_);
    new_root->children.push_back(split->second);
    root_ = new_root;
    ++height_;
  }
  ++size_;
}

Status BPlusTree::BulkLoad(const std::vector<Entry>& entries) {
  if (size_ != 0) {
    return Status::FailedPrecondition("bulk load requires an empty tree");
  }
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].key < entries[i - 1].key) {
      return Status::InvalidArgument("bulk load entries not in key order");
    }
  }
  if (entries.empty()) return Status::Ok();

  arena_.clear();
  root_ = nullptr;

  // Build the leaf level: full leaves left to right, doubly linked.
  struct LevelEntry {
    Node* node;
    uint64_t min_key;  // smallest key in the subtree; becomes a separator
  };
  const auto fanout = static_cast<size_t>(fanout_);
  std::vector<LevelEntry> level;
  level.reserve(entries.size() / fanout + 1);
  Node* prev_leaf = nullptr;
  for (size_t start = 0; start < entries.size(); start += fanout) {
    const size_t end = std::min(start + fanout, entries.size());
    Node* leaf = NewNode(/*is_leaf=*/true);
    leaf->keys.reserve(end - start);
    leaf->payloads.reserve(end - start);
    for (size_t i = start; i < end; ++i) {
      leaf->keys.push_back(entries[i].key);
      leaf->payloads.push_back(entries[i].payload);
    }
    leaf->prev = prev_leaf;
    if (prev_leaf != nullptr) prev_leaf->next = leaf;
    prev_leaf = leaf;
    level.push_back({leaf, leaf->keys.front()});
  }
  height_ = 1;

  // Group children upward (fanout_+1 per internal node); the separator for
  // child i (i > 0) is the smallest key of its subtree, which keeps every
  // key inside the [keys[i-1], keys[i]] bracket CheckInvariants enforces.
  while (level.size() > 1) {
    std::vector<LevelEntry> upper;
    upper.reserve(level.size() / (fanout + 1) + 1);
    for (size_t start = 0; start < level.size(); start += fanout + 1) {
      const size_t end = std::min(start + fanout + 1, level.size());
      Node* internal = NewNode(/*is_leaf=*/false);
      internal->children.reserve(end - start);
      internal->keys.reserve(end - start - 1);
      for (size_t i = start; i < end; ++i) {
        if (i > start) internal->keys.push_back(level[i].min_key);
        internal->children.push_back(level[i].node);
      }
      upper.push_back({internal, level[start].min_key});
    }
    level = std::move(upper);
    ++height_;
  }
  root_ = level.front().node;
  size_ = entries.size();
  return Status::Ok();
}

const BPlusTree::Entry BPlusTree::Cursor::Get() const {
  return {leaf_->keys[slot_], leaf_->payloads[slot_]};
}

void BPlusTree::Cursor::Next() {
  if (leaf_ == nullptr) return;
  ++slot_;
  while (leaf_ != nullptr && slot_ >= leaf_->keys.size()) {
    leaf_ = leaf_->next;
    slot_ = 0;
  }
}

void BPlusTree::Cursor::Prev() {
  if (leaf_ == nullptr) return;
  if (slot_ == 0) {
    leaf_ = leaf_->prev;
    while (leaf_ != nullptr && leaf_->keys.empty()) leaf_ = leaf_->prev;
    slot_ = (leaf_ != nullptr) ? leaf_->keys.size() - 1 : 0;
    return;
  }
  --slot_;
}

BPlusTree::Cursor BPlusTree::LowerBound(uint64_t key) const {
  Node* node = root_;
  while (!node->is_leaf) {
    // Descend left of equal separators: duplicates of a separator key can
    // sit at the tail of the left sibling, and the leaf chain covers the
    // rest.
    const auto it =
        std::lower_bound(node->keys.begin(), node->keys.end(), key);
    node = node->children[static_cast<size_t>(it - node->keys.begin())];
  }
  Cursor cursor;
  const auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  cursor.leaf_ = node;
  cursor.slot_ = static_cast<size_t>(it - node->keys.begin());
  if (cursor.slot_ >= node->keys.size()) {
    // Walk to the next non-empty leaf (or end).
    Node* next = node->next;
    while (next != nullptr && next->keys.empty()) next = next->next;
    cursor.leaf_ = next;
    cursor.slot_ = 0;
  }
  return cursor;
}

BPlusTree::Cursor BPlusTree::First() const {
  Node* node = root_;
  while (!node->is_leaf) node = node->children.front();
  Cursor cursor;
  if (!node->keys.empty()) {
    cursor.leaf_ = node;
    cursor.slot_ = 0;
  }
  return cursor;
}

BPlusTree::Cursor BPlusTree::Last() const {
  Node* node = root_;
  while (!node->is_leaf) node = node->children.back();
  Cursor cursor;
  if (!node->keys.empty()) {
    cursor.leaf_ = node;
    cursor.slot_ = node->keys.size() - 1;
  }
  return cursor;
}

Status BPlusTree::CheckInvariants() const {
  if (root_ == nullptr) return Status::Internal("B+-tree has no root");

  // Recursive structural walk. Returns the subtree's leaf-entry count, or an
  // error; `lo`/`hi` bracket the keys the subtree may contain.
  size_t walked_nodes = 0;
  std::vector<const Node*> leaves_in_order;
  const auto walk = [&](const auto& self, const Node* node, int depth,
                        uint64_t lo, uint64_t hi,
                        size_t* entries) -> Status {
    ++walked_nodes;
    if (!std::is_sorted(node->keys.begin(), node->keys.end())) {
      return Status::Internal("node keys out of order");
    }
    for (uint64_t k : node->keys) {
      if (k < lo || k > hi) return Status::Internal("key escapes separator bracket");
    }
    if (node->keys.size() > static_cast<size_t>(fanout_)) {
      return Status::Internal("node exceeds fanout");
    }
    if (node->is_leaf) {
      if (depth != height_) {
        return Status::Internal("leaf at depth " + std::to_string(depth) +
                                " but height is " + std::to_string(height_));
      }
      if (node->payloads.size() != node->keys.size()) {
        return Status::Internal("leaf payloads not parallel to keys");
      }
      leaves_in_order.push_back(node);
      *entries += node->keys.size();
      return Status::Ok();
    }
    if (node->children.size() != node->keys.size() + 1) {
      return Status::Internal("internal node child count != key count + 1");
    }
    for (size_t i = 0; i < node->children.size(); ++i) {
      // Subtree i holds keys in [keys[i-1], keys[i]); the bracket is closed
      // on the right because duplicate separator keys may stay left.
      const uint64_t child_lo = i == 0 ? lo : node->keys[i - 1];
      const uint64_t child_hi = i == node->keys.size() ? hi : node->keys[i];
      if (const Status s = self(self, node->children[i], depth + 1, child_lo,
                                child_hi, entries);
          !s.ok()) {
        return s;
      }
    }
    return Status::Ok();
  };

  size_t entries = 0;
  if (const Status s =
          walk(walk, root_, 1, 0, UINT64_MAX, &entries);
      !s.ok()) {
    return s;
  }
  if (entries != size_) {
    return Status::Internal("leaf entries (" + std::to_string(entries) +
                            ") != size (" + std::to_string(size_) + ")");
  }
  if (walked_nodes != arena_.size()) {
    return Status::Internal("unreachable nodes leaked in the arena");
  }
  // The leaf chain must visit exactly the leaves of the in-order walk.
  const Node* leaf = root_;
  while (!leaf->is_leaf) leaf = leaf->children.front();
  if (leaf->prev != nullptr) {
    return Status::Internal("first leaf has a predecessor");
  }
  for (const Node* expected : leaves_in_order) {
    if (leaf != expected) return Status::Internal("leaf chain out of order");
    if (leaf->next != nullptr && leaf->next->prev != leaf) {
      return Status::Internal("leaf chain not doubly linked");
    }
    leaf = leaf->next;
  }
  if (leaf != nullptr) return Status::Internal("leaf chain has extra tail");
  return Status::Ok();
}

std::vector<BPlusTree::Entry> BPlusTree::Scan() const {
  std::vector<Entry> out;
  out.reserve(size_);
  for (Cursor c = First(); c.valid(); c.Next()) out.push_back(c.Get());
  return out;
}

}  // namespace vrec::index
