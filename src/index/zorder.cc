#include "index/zorder.h"

#include <bit>
#include <cstddef>

namespace vrec::index {

uint64_t ZOrderInterleave(const std::vector<uint32_t>& keys,
                          int bits_per_key) {
  const int m = static_cast<int>(keys.size());
  uint64_t z = 0;
  // Most-significant bit first so that Z-value order is a space-filling
  // curve over the key grid.
  for (int b = bits_per_key - 1; b >= 0; --b) {
    for (int i = 0; i < m; ++i) {
      z = (z << 1) | ((keys[static_cast<size_t>(i)] >> b) & 1u);
    }
  }
  return z;
}

std::vector<uint32_t> ZOrderDeinterleave(uint64_t z, int num_keys,
                                         int bits_per_key) {
  std::vector<uint32_t> keys(static_cast<size_t>(num_keys), 0);
  const int total = num_keys * bits_per_key;
  for (int pos = 0; pos < total; ++pos) {
    const int bit = (z >> (total - 1 - pos)) & 1u;
    const int key_index = pos % num_keys;
    keys[static_cast<size_t>(key_index)] =
        (keys[static_cast<size_t>(key_index)] << 1) |
        static_cast<uint32_t>(bit);
  }
  return keys;
}

int CommonPrefixLength(uint64_t a, uint64_t b) {
  if (a == b) return 64;
  return std::countl_zero(a ^ b);
}

}  // namespace vrec::index
