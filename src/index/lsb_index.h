#ifndef VREC_INDEX_LSB_INDEX_H_
#define VREC_INDEX_LSB_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "index/bplus_tree.h"
#include "index/emd_embedding.h"
#include "index/lsh.h"
#include "signature/cuboid_signature.h"
#include "util/thread_pool.h"

namespace vrec::index {

/// The LSB index the paper adopts for content-candidate retrieval: cuboid
/// signatures are embedded into L1 space, hashed with m L1-stable LSH
/// functions, the m keys are Z-order interleaved, and the Z-values are kept
/// in B+-trees ("we embed EMD-metric into L1-norm space like [35], and use
/// LSB-index to index Z-order values of points obtained by hash
/// conversion"). A small forest of independently-seeded trees trades memory
/// for recall exactly as in Tao et al.
class LsbIndex {
 public:
  struct Options {
    EmbeddingOptions embedding;
    L1Lsh::Options lsh;
    /// Number of LSB-trees (independent LSH seeds).
    int num_trees = 4;
    int tree_fanout = 64;
  };

  LsbIndex();
  explicit LsbIndex(const Options& options);

  /// Indexes every signature of a video's series.
  void AddVideo(int64_t video_id, const signature::SignatureSeries& series);

  /// Bulk build: indexes all series at once, parallelising the expensive
  /// EMD embedding across `pool` and then filling each B+-tree from its own
  /// worker (trees are independent, so no tree is ever touched by two
  /// threads). Equivalent to calling AddVideo for each entry in order.
  /// Runs serially when `pool` is null.
  void AddVideosBulk(
      const std::vector<std::pair<int64_t, const signature::SignatureSeries*>>&
          videos,
      util::ThreadPool* pool);

  /// Bulk build from prepared series (the recommender's fast path): same
  /// forest, same Z-values modulo the cheaper O(n + dims) CDF embedding.
  void AddVideosBulkPrepared(
      const std::vector<std::pair<int64_t, const signature::PreparedSeries*>>&
          videos,
      util::ThreadPool* pool);

  /// Candidate videos for one query signature: each tree is probed around
  /// the query's Z-value, expanding to the entries with the longest common
  /// prefix first (`probes` entries per direction per tree). Returns video
  /// ids with hit counts (higher count = more query signatures / trees
  /// agreed).
  std::unordered_map<int64_t, int> Candidates(
      const signature::CuboidSignature& query, int probes = 8) const;

  /// Candidates for a whole query series (union of per-signature probes).
  std::unordered_map<int64_t, int> CandidatesForSeries(
      const signature::SignatureSeries& series, int probes = 8) const;

  /// Prepared-form probes; identical semantics to the raw overloads.
  std::unordered_map<int64_t, int> CandidatesPrepared(
      const signature::PreparedSignature& query, int probes = 8) const;
  std::unordered_map<int64_t, int> CandidatesForPreparedSeries(
      const signature::PreparedSeries& series, int probes = 8) const;

  size_t indexed_signatures() const { return indexed_; }
  const Options& options() const { return options_; }

  /// Snapshot support: all entries of tree `t` in key order (the Scan()
  /// order a RestoreTrees-built tree reproduces exactly).
  std::vector<BPlusTree::Entry> TreeEntries(size_t t) const;

  /// Rebuilds the forest from per-tree key-ordered entry lists (one list
  /// per configured tree, each of length `indexed`), bulk-loading each
  /// B+-tree bottom-up in O(n). Probe-identical to the saved forest
  /// because probes only walk the leaf chain, which preserves entry order.
  [[nodiscard]]
  Status RestoreTrees(
      const std::vector<std::vector<BPlusTree::Entry>>& per_tree,
      size_t indexed);

  /// Forest-level audit: one LSH function and one structurally-valid B+-tree
  /// per configured tree, and every tree holds exactly indexed_signatures()
  /// entries (each signature is hashed into every tree).
  [[nodiscard]]
  Status CheckInvariants() const;

 private:
  uint64_t ZValue(size_t tree, const std::vector<double>& embedded) const;
  /// Probes every tree around `embedded`'s Z-value, merging hit counts.
  void ProbeEmbedded(const std::vector<double>& embedded, int probes,
                     std::unordered_map<int64_t, int>& hits) const;

  Options options_;
  std::vector<L1Lsh> hashes_;    // one per tree
  std::vector<BPlusTree> trees_;
  size_t indexed_ = 0;
};

}  // namespace vrec::index

#endif  // VREC_INDEX_LSB_INDEX_H_
