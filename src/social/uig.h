#ifndef VREC_SOCIAL_UIG_H_
#define VREC_SOCIAL_UIG_H_

#include <vector>

#include "graph/weighted_graph.h"
#include "social/descriptor.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace vrec::social {

/// Builds the User Interest Graph (Section 4.2.2, Figure 2): nodes are
/// social users [0, user_count), and the weight of edge (u1, u2) is the
/// number of videos both users are interested in (appear together in the
/// video's social descriptor).
///
/// This is the allocation-light entry point: `descriptors` are views into
/// caller-owned storage (one per video, none copied), and the pairwise
/// co-occurrence accumulation fans across `pool` (null runs serially) with
/// one edge-weight map per worker shard, merged once at the end. Edge
/// weights are whole co-occurrence counts, so the merge is exact and the
/// result is identical for every thread count. User ids must lie in
/// [0, user_count). Null descriptor pointers are skipped.
graph::WeightedGraph BuildUserInterestGraph(
    const std::vector<const SocialDescriptor*>& descriptors,
    size_t user_count, util::ThreadPool* pool = nullptr);

/// Convenience overload over owned descriptors (tests, small tools); takes
/// views of `descriptors` and delegates to the pointer-based builder.
graph::WeightedGraph BuildUserInterestGraph(
    const std::vector<SocialDescriptor>& descriptors, size_t user_count);

/// UIG-specific invariants on top of WeightedGraph::CheckInvariants(): the
/// undirected edge set is symmetric and self-loop free (a user does not
/// co-comment with themselves) and every weight is a positive whole
/// co-occurrence count.
[[nodiscard]]
Status CheckUigInvariants(const graph::WeightedGraph& uig);

}  // namespace vrec::social

#endif  // VREC_SOCIAL_UIG_H_
