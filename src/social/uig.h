#ifndef VREC_SOCIAL_UIG_H_
#define VREC_SOCIAL_UIG_H_

#include <vector>

#include "graph/weighted_graph.h"
#include "social/descriptor.h"
#include "util/status.h"

namespace vrec::social {

/// Builds the User Interest Graph (Section 4.2.2, Figure 2): nodes are
/// social users [0, user_count), and the weight of edge (u1, u2) is the
/// number of videos both users are interested in (appear together in the
/// video's social descriptor).
///
/// `descriptors` holds one descriptor per video. User ids must lie in
/// [0, user_count).
graph::WeightedGraph BuildUserInterestGraph(
    const std::vector<SocialDescriptor>& descriptors, size_t user_count);

/// UIG-specific invariants on top of WeightedGraph::CheckInvariants(): the
/// undirected edge set is symmetric and self-loop free (a user does not
/// co-comment with themselves) and every weight is a positive whole
/// co-occurrence count.
[[nodiscard]]
Status CheckUigInvariants(const graph::WeightedGraph& uig);

}  // namespace vrec::social

#endif  // VREC_SOCIAL_UIG_H_
