#include "social/sar.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace vrec::social {

namespace {

// Folds a sorted bin list into (bin, count) pairs. Shared by every sparse
// vectorization path so they produce byte-identical histograms. Takes a raw
// span so heap- and arena-backed bin buffers go through the same code.
void RunLengthEncode(const int* sorted_bins, size_t n,
                     SparseHistogram* out) {
  out->clear();
  size_t i = 0;
  while (i < n) {
    size_t j = i + 1;
    while (j < n && sorted_bins[j] == sorted_bins[i]) ++j;
    const double weight = static_cast<double>(j - i);
    out->bins.emplace_back(sorted_bins[i], weight);
    out->sum += weight;
    i = j;
  }
}

}  // namespace

std::vector<double> ToDense(const SparseHistogram& histogram, int k) {
  std::vector<double> dense(static_cast<size_t>(std::max(k, 0)), 0.0);
  for (const auto& [bin, weight] : histogram.bins) {
    if (bin >= 0 && static_cast<size_t>(bin) < dense.size()) {
      dense[static_cast<size_t>(bin)] += weight;
    }
  }
  return dense;
}

Status CheckSparseHistogram(const SparseHistogram& histogram, int k) {
  double sum = 0.0;
  for (size_t i = 0; i < histogram.bins.size(); ++i) {
    const auto& [bin, weight] = histogram.bins[i];
    if (bin < 0 || (k >= 0 && bin >= k)) {
      return Status::Internal("sparse histogram bin " + std::to_string(bin) +
                              " outside [0, " + std::to_string(k) + ")");
    }
    if (!std::isfinite(weight) || weight <= 0.0) {
      return Status::Internal("sparse histogram bin " + std::to_string(bin) +
                              " has non-positive weight");
    }
    if (i > 0 && histogram.bins[i - 1].first >= bin) {
      return Status::Internal("sparse histogram bins not strictly sorted at " +
                              std::to_string(bin));
    }
    sum += weight;
  }
  if (sum != histogram.sum) {
    return Status::Internal("sparse histogram cached sum " +
                            std::to_string(histogram.sum) +
                            " != recomputed " + std::to_string(sum));
  }
  return Status::Ok();
}

UserDictionary::UserDictionary(const std::vector<int>& labels, int k,
                               DictionaryLookup lookup)
    // Size the table for ~2 entries per bucket on average.
    : UserDictionary(labels, k, lookup,
                     std::max<size_t>(16, labels.size() / 2)) {}

UserDictionary::UserDictionary(const std::vector<int>& labels, int k,
                               DictionaryLookup lookup, size_t hash_buckets)
    : k_(k),
      lookup_(lookup),
      user_count_(labels.size()),
      label_of_user_(labels),
      hash_table_(hash_buckets) {
  RebuildLookupStructures();
}

void UserDictionary::RebuildLookupStructures() {
  entries_.clear();
  if (lookup_ == DictionaryLookup::kChainedHash) {
    for (size_t u = 0; u < user_count_; ++u) {
      hash_table_.InsertOrAssign(UserName(static_cast<UserId>(u)),
                                 label_of_user_[u]);
    }
    return;
  }
  entries_.reserve(user_count_);
  for (size_t u = 0; u < user_count_; ++u) {
    entries_.emplace_back(UserName(static_cast<UserId>(u)),
                          label_of_user_[u]);
  }
  if (lookup_ == DictionaryLookup::kSortedArray) {
    std::sort(entries_.begin(), entries_.end());
  }
}

std::optional<int> UserDictionary::CommunityOfName(
    const std::string& name) const {
  switch (lookup_) {
    case DictionaryLookup::kChainedHash: {
      const auto found = hash_table_.Find(name);
      if (!found.has_value()) return std::nullopt;
      return static_cast<int>(*found);
    }
    case DictionaryLookup::kSortedArray: {
      const auto it = std::lower_bound(
          entries_.begin(), entries_.end(), name,
          [](const auto& entry, const std::string& n) {
            return entry.first < n;
          });
      if (it == entries_.end() || it->first != name) return std::nullopt;
      return it->second;
    }
    case DictionaryLookup::kLinearScan: {
      for (const auto& [key, cno] : entries_) {
        if (key == name) return cno;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<int> UserDictionary::CommunityOf(UserId user) const {
  if (user < 0 || static_cast<size_t>(user) >= user_count_) {
    return std::nullopt;
  }
  return label_of_user_[static_cast<size_t>(user)];
}

void UserDictionary::Assign(UserId user, int community) {
  if (user < 0) return;
  const auto u = static_cast<size_t>(user);
  if (u == user_count_) {
    label_of_user_.push_back(community);
    ++user_count_;
  } else if (u < user_count_) {
    label_of_user_[u] = community;
  } else {
    return;  // non-contiguous ids are not supported
  }
  k_ = std::max(k_, community + 1);
  const std::string name = UserName(user);
  switch (lookup_) {
    case DictionaryLookup::kChainedHash:
      hash_table_.InsertOrAssign(name, community);
      return;
    case DictionaryLookup::kSortedArray: {
      const auto it = std::lower_bound(
          entries_.begin(), entries_.end(), name,
          [](const auto& entry, const std::string& n) {
            return entry.first < n;
          });
      if (it != entries_.end() && it->first == name) {
        it->second = community;
      } else {
        entries_.insert(it, {name, community});
      }
      return;
    }
    case DictionaryLookup::kLinearScan: {
      for (auto& [key, cno] : entries_) {
        if (key == name) {
          cno = community;
          return;
        }
      }
      entries_.emplace_back(name, community);
      return;
    }
  }
}

void UserDictionary::ReplaceCommunity(int from, int to) {
  for (int& l : label_of_user_) {
    if (l == from) l = to;
  }
  if (lookup_ == DictionaryLookup::kChainedHash) {
    hash_table_.ReplaceCno(from, to);
  } else {
    for (auto& [name, cno] : entries_) {
      if (cno == from) cno = to;
    }
  }
}

Status UserDictionary::CheckInvariants() const {
  if (label_of_user_.size() != user_count_) {
    return Status::Internal("label array size != user count");
  }
  for (size_t u = 0; u < user_count_; ++u) {
    if (label_of_user_[u] < 0 || label_of_user_[u] >= k_) {
      return Status::Internal("user " + std::to_string(u) + " labeled " +
                              std::to_string(label_of_user_[u]) +
                              ", outside [0, k)");
    }
  }
  if (lookup_ == DictionaryLookup::kChainedHash) {
    if (!entries_.empty()) {
      return Status::Internal("hash mode must not keep the entry array");
    }
    if (const Status s = hash_table_.CheckInvariants(); !s.ok()) return s;
    if (hash_table_.size() != user_count_) {
      return Status::Internal("hash table holds " +
                              std::to_string(hash_table_.size()) +
                              " entries for " + std::to_string(user_count_) +
                              " users");
    }
    for (size_t u = 0; u < user_count_; ++u) {
      const auto found =
          hash_table_.FindWithoutStats(UserName(static_cast<UserId>(u)));
      if (!found.has_value() || *found != label_of_user_[u]) {
        return Status::Internal("hash table out of sync for user " +
                                std::to_string(u));
      }
    }
    return Status::Ok();
  }
  if (entries_.size() != user_count_) {
    return Status::Internal("entry array size != user count");
  }
  if (lookup_ == DictionaryLookup::kSortedArray &&
      !std::is_sorted(entries_.begin(), entries_.end())) {
    return Status::Internal("sorted-array entries out of order");
  }
  for (size_t u = 0; u < user_count_; ++u) {
    const auto found = CommunityOfName(UserName(static_cast<UserId>(u)));
    if (!found.has_value() || *found != label_of_user_[u]) {
      return Status::Internal("entry array out of sync for user " +
                              std::to_string(u));
    }
  }
  return Status::Ok();
}

std::vector<double> UserDictionary::Vectorize(
    const SocialDescriptor& descriptor) const {
  std::vector<double> hist(static_cast<size_t>(k_), 0.0);
  for (UserId u : descriptor.users()) {
    const auto c = CommunityOf(u);
    if (c.has_value() && *c >= 0 && *c < k_) {
      hist[static_cast<size_t>(*c)] += 1.0;
    }
  }
  return hist;
}

SparseHistogram UserDictionary::VectorizeSparse(
    const SocialDescriptor& descriptor) const {
  SparseHistogram out;
  VectorizeSparse(descriptor, &out, /*arena=*/nullptr);
  return out;
}

void UserDictionary::VectorizeSparse(const SocialDescriptor& descriptor,
                                     SparseHistogram* out,
                                     util::Arena* arena) const {
  util::ArenaVector<int> scratch{util::ArenaAllocator<int>(arena)};
  scratch.reserve(descriptor.size());
  for (UserId u : descriptor.users()) {
    const auto c = CommunityOf(u);
    if (c.has_value() && *c >= 0 && *c < k_) scratch.push_back(*c);
  }
  std::sort(scratch.begin(), scratch.end());
  RunLengthEncode(scratch.data(), scratch.size(), out);
}

std::vector<double> UserDictionary::VectorizeByName(
    const std::vector<std::string>& names) const {
  std::vector<double> hist(static_cast<size_t>(k_), 0.0);
  for (const std::string& name : names) {
    const auto c = CommunityOfName(name);
    if (c.has_value() && *c >= 0 && *c < k_) {
      hist[static_cast<size_t>(*c)] += 1.0;
    }
  }
  return hist;
}

SparseHistogram UserDictionary::VectorizeByNameSparse(
    const std::vector<std::string>& names) const {
  std::vector<int> bins;
  bins.reserve(names.size());
  for (const std::string& name : names) {
    const auto c = CommunityOfName(name);
    if (c.has_value() && *c >= 0 && *c < k_) bins.push_back(*c);
  }
  std::sort(bins.begin(), bins.end());
  SparseHistogram out;
  RunLengthEncode(bins.data(), bins.size(), &out);
  return out;
}

double ApproxJaccard(const std::vector<double>& a,
                     const std::vector<double>& b) {
  double num = 0.0, den = 0.0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    num += std::min(a[i], b[i]);
    den += std::max(a[i], b[i]);
  }
  for (size_t i = n; i < a.size(); ++i) den += a[i];
  for (size_t i = n; i < b.size(); ++i) den += b[i];
  return den > 0.0 ? num / den : 0.0;
}

namespace {

// Accessor adapters funnel both histogram layouts through one merge body,
// so the comparisons and the Σmin additions run in the identical order for
// every overload — the view overloads are bit-for-bit the pair overload.
struct AosBins {
  const SparseHistogram& h;
  size_t size() const { return h.bins.size(); }
  int bin(size_t i) const { return h.bins[i].first; }
  double weight(size_t i) const { return h.bins[i].second; }
  double sum() const { return h.sum; }
};

struct SoaBins {
  const SparseHistogramView& h;
  size_t size() const { return h.len; }
  int bin(size_t i) const { return h.bins[i]; }
  double weight(size_t i) const { return h.weights[i]; }
  double sum() const { return h.sum; }
};

template <typename A, typename B>
double ApproxJaccardMerge(const A& a, const B& b) {
  double num = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a.bin(i) < b.bin(j)) {
      ++i;
    } else if (b.bin(j) < a.bin(i)) {
      ++j;
    } else {
      num += std::min(a.weight(i), b.weight(j));
      ++i;
      ++j;
    }
  }
  const double den = a.sum() + b.sum() - num;
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace

double ApproxJaccardSparse(const SparseHistogram& a,
                           const SparseHistogram& b) {
  return ApproxJaccardMerge(AosBins{a}, AosBins{b});
}

double ApproxJaccardSparse(const SparseHistogram& a,
                           const SparseHistogramView& b) {
  return ApproxJaccardMerge(AosBins{a}, SoaBins{b});
}

double ApproxJaccardSparse(const SparseHistogramView& a,
                           const SparseHistogramView& b) {
  return ApproxJaccardMerge(SoaBins{a}, SoaBins{b});
}

}  // namespace vrec::social
