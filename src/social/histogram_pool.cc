#include "social/histogram_pool.h"

#include <string>
#include <utility>

#include "util/check.h"

namespace vrec::social {

namespace {

size_t HistogramBytes(size_t len) {
  return len * (sizeof(int) + sizeof(double));
}

}  // namespace

void HistogramPool::Build(
    const std::vector<const SparseHistogram*>& histograms) {
  Clear();
  size_t total = 0;
  for (const SparseHistogram* h : histograms) {
    if (h != nullptr) total += h->nnz();
  }
  bins_.reserve(total);
  weights_.reserve(total);
  slots_.resize(histograms.size());
  for (size_t i = 0; i < histograms.size(); ++i) {
    if (histograms[i] != nullptr) Append(&slots_[i], *histograms[i]);
  }
}

void HistogramPool::Clear() {
  bins_.clear();
  weights_.clear();
  slots_.clear();
  live_bytes_ = 0;
  dead_bytes_ = 0;
}

void HistogramPool::Append(Slot* slot, const SparseHistogram& histogram) {
  slot->offset = bins_.size();
  slot->len = histogram.nnz();
  slot->sum = histogram.sum;
  for (const auto& [bin, weight] : histogram.bins) {
    bins_.push_back(bin);
    weights_.push_back(weight);
  }
  live_bytes_ += HistogramBytes(slot->len);
}

void HistogramPool::Update(size_t slot, const SparseHistogram& histogram) {
  VREC_CHECK(slot < slots_.size());
  Slot& s = slots_[slot];
  const size_t old_bytes = HistogramBytes(s.len);
  dead_bytes_ += old_bytes;
  live_bytes_ -= old_bytes;
  s = Slot{};
  Append(&s, histogram);
  if (dead_bytes_ > live_bytes_) Compact();
}

void HistogramPool::Release(size_t slot) {
  VREC_CHECK(slot < slots_.size());
  Slot& s = slots_[slot];
  if (s.len == 0) {
    s = Slot{};
    return;
  }
  const size_t bytes = HistogramBytes(s.len);
  dead_bytes_ += bytes;
  live_bytes_ -= bytes;
  s = Slot{};
  if (dead_bytes_ > live_bytes_) Compact();
}

void HistogramPool::Compact() {
  std::vector<int> bins;
  std::vector<double> weights;
  bins.reserve(live_bytes_ / (sizeof(int) + sizeof(double)));
  weights.reserve(bins.capacity());
  for (Slot& s : slots_) {
    const size_t new_offset = bins.size();
    bins.insert(bins.end(), bins_.begin() + s.offset,
                bins_.begin() + s.offset + s.len);
    weights.insert(weights.end(), weights_.begin() + s.offset,
                   weights_.begin() + s.offset + s.len);
    s.offset = new_offset;
  }
  bins_ = std::move(bins);
  weights_ = std::move(weights);
  dead_bytes_ = 0;
}

Status HistogramPool::CheckInvariants() const {
  if (bins_.size() != weights_.size()) {
    return Status::Internal("histogram pool bins/weights length mismatch");
  }
  size_t live = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.offset + s.len > bins_.size()) {
      return Status::Internal("histogram pool slot " + std::to_string(i) +
                              " range out of bounds");
    }
    double sum = 0.0;
    for (size_t e = s.offset; e < s.offset + s.len; ++e) {
      if (weights_[e] <= 0.0) {
        return Status::Internal("histogram pool slot " + std::to_string(i) +
                                " holds non-positive weight");
      }
      if (e > s.offset && bins_[e] <= bins_[e - 1]) {
        return Status::Internal("histogram pool slot " + std::to_string(i) +
                                " bins not strictly sorted");
      }
      sum += weights_[e];
    }
    if (s.len == 0 && s.sum != 0.0) {
      return Status::Internal("empty histogram pool slot " +
                              std::to_string(i) + " carries sum");
    }
    if (s.len > 0 && sum != s.sum) {
      return Status::Internal("histogram pool slot " + std::to_string(i) +
                              " cached sum off");
    }
    live += HistogramBytes(s.len);
  }
  if (live != live_bytes_) {
    return Status::Internal("histogram pool live byte total off");
  }
  return Status::Ok();
}

}  // namespace vrec::social
