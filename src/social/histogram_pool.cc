#include "social/histogram_pool.h"

#include <string>
#include <utility>

#include "util/check.h"

namespace vrec::social {

namespace {

size_t HistogramBytes(size_t len) {
  return len * (sizeof(int) + sizeof(double));
}

}  // namespace

void HistogramPool::Build(
    const std::vector<const SparseHistogram*>& histograms) {
  Clear();
  size_t total = 0;
  for (const SparseHistogram* h : histograms) {
    if (h != nullptr) total += h->nnz();
  }
  bins_.reserve(total);
  weights_.reserve(total);
  slots_.resize(histograms.size());
  for (size_t i = 0; i < histograms.size(); ++i) {
    if (histograms[i] != nullptr) Append(&slots_[i], *histograms[i]);
  }
}

void HistogramPool::Clear() {
  bins_.clear();
  weights_.clear();
  slots_.clear();
  live_bytes_ = 0;
  dead_bytes_ = 0;
  ext_bins_ = nullptr;
  ext_weights_ = nullptr;
  ext_len_ = 0;
}

Status HistogramPool::ValidateRestored(const std::vector<Slot>& slots,
                                       size_t flat_len,
                                       size_t live_bytes) const {
  size_t live = 0;
  for (size_t i = 0; i < slots.size(); ++i) {
    const Slot& s = slots[i];
    if (s.len > flat_len || s.offset > flat_len - s.len) {
      return Status::InvalidArgument("restored histogram slot " +
                                     std::to_string(i) +
                                     " range out of bounds");
    }
    if (s.len == 0 && s.sum != 0.0) {
      return Status::InvalidArgument("restored empty histogram slot " +
                                     std::to_string(i) + " carries sum");
    }
    live += HistogramBytes(s.len);
  }
  if (live != live_bytes) {
    return Status::InvalidArgument("restored histogram live byte total off");
  }
  return Status::Ok();
}

Status HistogramPool::RestoreBorrowed(std::vector<Slot> slots,
                                      const AdoptedFlats& flats,
                                      size_t live_bytes, size_t dead_bytes) {
  Clear();
  if (const Status s = ValidateRestored(slots, flats.len, live_bytes);
      !s.ok()) {
    return s;
  }
  slots_ = std::move(slots);
  live_bytes_ = live_bytes;
  dead_bytes_ = dead_bytes;
  ext_bins_ = flats.bins;
  ext_weights_ = flats.weights;
  ext_len_ = flats.len;
  return Status::Ok();
}

Status HistogramPool::RestoreOwned(std::vector<Slot> slots,
                                   std::vector<int> bins,
                                   std::vector<double> weights,
                                   size_t live_bytes, size_t dead_bytes) {
  Clear();
  if (bins.size() != weights.size()) {
    return Status::InvalidArgument(
        "restored histogram bins/weights length mismatch");
  }
  if (const Status s = ValidateRestored(slots, bins.size(), live_bytes);
      !s.ok()) {
    return s;
  }
  slots_ = std::move(slots);
  bins_ = std::move(bins);
  weights_ = std::move(weights);
  live_bytes_ = live_bytes;
  dead_bytes_ = dead_bytes;
  return Status::Ok();
}

void HistogramPool::MaterializeOwned() {
  if (!borrowed()) return;
  bins_.assign(ext_bins_, ext_bins_ + ext_len_);
  weights_.assign(ext_weights_, ext_weights_ + ext_len_);
  ext_bins_ = nullptr;
  ext_weights_ = nullptr;
  ext_len_ = 0;
}

void HistogramPool::Append(Slot* slot, const SparseHistogram& histogram) {
  slot->offset = bins_.size();
  slot->len = histogram.nnz();
  slot->sum = histogram.sum;
  for (const auto& [bin, weight] : histogram.bins) {
    bins_.push_back(bin);
    weights_.push_back(weight);
  }
  live_bytes_ += HistogramBytes(slot->len);
}

void HistogramPool::Update(size_t slot, const SparseHistogram& histogram) {
  MaterializeOwned();
  VREC_CHECK(slot < slots_.size());
  Slot& s = slots_[slot];
  const size_t old_bytes = HistogramBytes(s.len);
  dead_bytes_ += old_bytes;
  live_bytes_ -= old_bytes;
  s = Slot{};
  Append(&s, histogram);
  if (dead_bytes_ > live_bytes_) Compact();
}

void HistogramPool::Release(size_t slot) {
  MaterializeOwned();
  VREC_CHECK(slot < slots_.size());
  Slot& s = slots_[slot];
  if (s.len == 0) {
    s = Slot{};
    return;
  }
  const size_t bytes = HistogramBytes(s.len);
  dead_bytes_ += bytes;
  live_bytes_ -= bytes;
  s = Slot{};
  if (dead_bytes_ > live_bytes_) Compact();
}

void HistogramPool::Compact() {
  VREC_CHECK(!borrowed());
  std::vector<int> bins;
  std::vector<double> weights;
  bins.reserve(live_bytes_ / (sizeof(int) + sizeof(double)));
  weights.reserve(bins.capacity());
  for (Slot& s : slots_) {
    const size_t new_offset = bins.size();
    bins.insert(bins.end(), bins_.begin() + s.offset,
                bins_.begin() + s.offset + s.len);
    weights.insert(weights.end(), weights_.begin() + s.offset,
                   weights_.begin() + s.offset + s.len);
    s.offset = new_offset;
  }
  bins_ = std::move(bins);
  weights_ = std::move(weights);
  dead_bytes_ = 0;
}

Status HistogramPool::CheckInvariants() const {
  if (!borrowed() && bins_.size() != weights_.size()) {
    return Status::Internal("histogram pool bins/weights length mismatch");
  }
  const int* bins = bins_data();
  const double* weights = weights_data();
  const size_t flat_len = this->flat_len();
  size_t live = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.offset + s.len > flat_len) {
      return Status::Internal("histogram pool slot " + std::to_string(i) +
                              " range out of bounds");
    }
    double sum = 0.0;
    for (size_t e = s.offset; e < s.offset + s.len; ++e) {
      if (weights[e] <= 0.0) {
        return Status::Internal("histogram pool slot " + std::to_string(i) +
                                " holds non-positive weight");
      }
      if (e > s.offset && bins[e] <= bins[e - 1]) {
        return Status::Internal("histogram pool slot " + std::to_string(i) +
                                " bins not strictly sorted");
      }
      sum += weights[e];
    }
    if (s.len == 0 && s.sum != 0.0) {
      return Status::Internal("empty histogram pool slot " +
                              std::to_string(i) + " carries sum");
    }
    if (s.len > 0 && sum != s.sum) {
      return Status::Internal("histogram pool slot " + std::to_string(i) +
                              " cached sum off");
    }
    live += HistogramBytes(s.len);
  }
  if (live != live_bytes_) {
    return Status::Internal("histogram pool live byte total off");
  }
  return Status::Ok();
}

}  // namespace vrec::social
