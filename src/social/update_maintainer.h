#ifndef VREC_SOCIAL_UPDATE_MAINTAINER_H_
#define VREC_SOCIAL_UPDATE_MAINTAINER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "social/descriptor.h"
#include "social/sar.h"
#include "social/subcommunity.h"
#include "util/status.h"

namespace vrec::social {

/// A new social connection observed in the recent time period: users u and v
/// co-commented `weight` additional videos.
struct SocialConnection {
  UserId u = 0;
  UserId v = 0;
  double weight = 1.0;
};

/// Statistics of one maintenance round (inputs of the paper's cost model,
/// Equation 8).
struct MaintenanceStats {
  size_t connections_processed = 0;
  size_t merges = 0;
  size_t splits = 0;
  size_t users_added = 0;
  size_t dictionary_updates = 0;
  /// Sub-community ids whose membership changed; the caller must re-vectorize
  /// the social descriptors of videos touching these communities.
  std::vector<int> changed_communities;
};

/// Maintains sub-communities under social updates (Section 4.2.4, Figure 5).
///
/// The maintainer owns the *active* edge set: the UIG edges that survived
/// extraction (edges removed by Figure 3 stay removed). Sub-communities are
/// exactly the connected components of the active edges, plus singleton
/// users. Each ApplyUpdates round:
///   1. accumulates the period's new connections;
///   2. merges two sub-communities when a cross-community connection grows
///      heavier than the threshold `w` (the lightest intra-community weight
///      at extraction time);
///   3. marks update-involved communities whose strongest new internal
///      connection stayed below `w` — plus freshly merged ones — as split
///      candidates, and splits candidates (removing their lightest internal
///      edges until they disconnect) until the community count is back to k;
///   4. keeps the user dictionary (and through it the chained hash table)
///      in sync, reporting every changed community so descriptor vectors can
///      be refreshed incrementally.
///
/// Community ids are stable but not dense: a merge retires one id and a
/// split mints a fresh one; retired dimensions simply stay zero in the
/// descriptor histograms, which Equation 6 ignores.
class SubCommunityMaintainer {
 public:
  /// One persisted UIG edge: endpoints by user id plus accumulated weight.
  /// The snapshot format stores the active and dormant edge sets as flat
  /// lists of these records.
  struct EdgeRecord {
    uint64_t u = 0;
    uint64_t v = 0;
    double weight = 0.0;
  };

  /// `dictionary` must outlive the maintainer; it is updated in place.
  SubCommunityMaintainer(const graph::WeightedGraph& uig,
                         const SubCommunityResult& extraction, int k,
                         UserDictionary* dictionary);

  /// Snapshot-restore factory: rebuilds a maintainer from its persisted
  /// state (target k, threshold w, mint counter, per-user labels, and both
  /// edge sets). Member sets are regrouped from the labels — exact, because
  /// merges erase retired ids so the non-empty groups are precisely the
  /// live communities. Validates the result with CheckInvariants before
  /// returning, so a corrupt snapshot cannot produce a structurally invalid
  /// maintainer. `dictionary` must outlive the maintainer.
  [[nodiscard]]
  static StatusOr<std::unique_ptr<SubCommunityMaintainer>> Restore(
      int k, double w, int next_label, std::vector<int> labels,
      const std::vector<EdgeRecord>& active,
      const std::vector<EdgeRecord>& dormant, UserDictionary* dictionary);

  /// Applies one period of updates.
  [[nodiscard]]
  StatusOr<MaintenanceStats> ApplyUpdates(
      const std::vector<SocialConnection>& connections);

  int num_communities() const { return static_cast<int>(members_.size()); }
  /// Total number of community ids ever minted (histogram dimensionality).
  int label_space() const { return next_label_; }
  int target_k() const { return k_; }
  double lightest_intra_weight() const { return w_; }

  /// Community of a user, or -1 for unknown users.
  int CommunityOf(UserId user) const;

  /// Members of community `label` (empty if retired/unknown).
  std::vector<UserId> MembersOf(int label) const;

  /// Snapshot accessors: the persisted state from which Restore rebuilds
  /// the maintainer exactly.
  const std::vector<int>& labels() const { return label_of_user_; }
  std::vector<EdgeRecord> ActiveEdges() const;
  std::vector<EdgeRecord> DormantEdges() const;

  /// Audits the maintainer: per-user labels and member sets agree and
  /// partition the user space, live labels stay below the mint counter,
  /// every active edge is intra-community, the active and dormant edge sets
  /// are disjoint with in-range endpoints, the threshold w equals the
  /// lightest active weight, and the user dictionary (including its chained
  /// hash table) is in sync. O(users + edges).
  [[nodiscard]]
  Status CheckInvariants() const;

 private:
  using EdgeKey = std::pair<size_t, size_t>;
  static EdgeKey MakeKey(size_t a, size_t b) {
    return a < b ? EdgeKey{a, b} : EdgeKey{b, a};
  }

  /// Restore-path constructor: installs persisted fields verbatim and
  /// regroups members_ from the labels. Validation happens in Restore.
  SubCommunityMaintainer(int k, double w, int next_label,
                         std::vector<int> labels,
                         const std::vector<EdgeRecord>& active,
                         const std::vector<EdgeRecord>& dormant,
                         UserDictionary* dictionary);

  void Relabel(int from, int to, MaintenanceStats* stats);
  void RecomputeLightestIntraWeight();
  /// Splits community `label` in two; returns false if it cannot be split.
  bool SplitCommunity(int label, MaintenanceStats* stats);

  int k_;
  double w_;
  int next_label_;
  UserDictionary* dictionary_;
  std::vector<int> label_of_user_;
  std::map<int, std::set<UserId>> members_;
  std::map<EdgeKey, double> active_edges_;
  /// Cross-community weight that has accumulated but not yet crossed the
  /// merge threshold; the conceptual UIG keeps accumulating even for edges
  /// the extraction removed.
  std::map<EdgeKey, double> dormant_edges_;
};

}  // namespace vrec::social

#endif  // VREC_SOCIAL_UPDATE_MAINTAINER_H_
