#ifndef VREC_SOCIAL_SUBCOMMUNITY_H_
#define VREC_SOCIAL_SUBCOMMUNITY_H_

#include <vector>

#include "graph/weighted_graph.h"
#include "util/status.h"

namespace vrec::social {

/// Result of sub-community extraction over a User Interest Graph.
struct SubCommunityResult {
  /// Sub-community label per user node, dense in [0, num_communities).
  std::vector<int> labels;
  int num_communities = 0;
  /// The lightest edge weight that *survives* inside the sub-communities —
  /// the threshold `w` that Figure 5's update-maintenance algorithm compares
  /// new connections against. +infinity when no intra-community edge exists.
  double lightest_intra_weight = 0.0;
};

/// The paper's SubgraphExtraction algorithm (Figure 3): start from the
/// graph's natural connected components, then repeatedly delete the current
/// lightest edge until at least `k` components exist; each component is a
/// sub-community. If the graph already has >= k components, no edges are
/// removed. Sub-communities may have very different sizes by design.
///
/// This entry point runs the fast equivalent formulation: build the maximum
/// spanning forest (Kruskal, descending weight) and cut its k - p lightest
/// forest edges, where p is the initial component count — identical output
/// to the literal loop whenever edge weights are distinct (single-linkage
/// equivalence; covered by a property test).
[[nodiscard]]
StatusOr<SubCommunityResult> ExtractSubCommunities(
    const graph::WeightedGraph& uig, int k);

/// The literal Figure 3 loop (delete lightest edge, re-check connectivity).
/// O(E * (V + E)); kept for validation and for the small per-community
/// splits performed during social-update maintenance.
[[nodiscard]]
StatusOr<SubCommunityResult> ExtractSubCommunitiesLiteral(
    const graph::WeightedGraph& uig, int k);

/// Audits an extraction result against its input graph: one dense label per
/// node covering [0, num_communities), at least k components reached (k is
/// always reachable — extraction rejects k > node count), communities that
/// refine the graph's connected components, and a lightest_intra_weight
/// that is +infinity exactly when every community is edge-free (otherwise
/// the weight of an actual intra-community edge).
[[nodiscard]]
Status CheckSubCommunityResult(const SubCommunityResult& result,
                               const graph::WeightedGraph& uig, int k);

}  // namespace vrec::social

#endif  // VREC_SOCIAL_SUBCOMMUNITY_H_
