#ifndef VREC_SOCIAL_DESCRIPTOR_H_
#define VREC_SOCIAL_DESCRIPTOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vrec::social {

/// Dense user identifier within a community dataset.
using UserId = int64_t;

/// The social descriptor of a video (Section 4.2.1): the set of user ids of
/// its owner and every user who commented on it, kept sorted and deduped.
class SocialDescriptor {
 public:
  SocialDescriptor() = default;
  /// Builds from an arbitrary id list (sorted and deduped internally).
  explicit SocialDescriptor(std::vector<UserId> users);

  /// Adds a user; no-op if already present.
  void Add(UserId user);

  bool Contains(UserId user) const;
  size_t size() const { return users_.size(); }
  bool empty() const { return users_.empty(); }
  const std::vector<UserId>& users() const { return users_; }

  bool operator==(const SocialDescriptor& other) const = default;

 private:
  std::vector<UserId> users_;  // sorted, unique
};

/// Exact social relevance (Equation 5): Jaccard coefficient of the two user
/// sets, |Dv n Dq| / |Dv u Dq|. Returns 0 when both are empty. This is the
/// efficient sorted-set implementation.
double ExactJaccard(const SocialDescriptor& a, const SocialDescriptor& b);

/// The *paper's baseline* computation of Equation 5: social descriptors as
/// raw user-name string sets, intersected by pairwise string comparison —
/// "the computation complexity of the measure is quadratic to the number of
/// elements in two compared social descriptors" (Section 4.2.1). This is
/// the cost that SAR exists to remove; the unoptimized CSF timing curves of
/// Figure 12(a) are measured against it. Inputs may be unsorted and must be
/// duplicate-free.
double ExactJaccardByNames(const std::vector<std::string>& a,
                           const std::vector<std::string>& b);

/// Upper bound on the Jaccard coefficient from set cardinalities alone:
/// |A ∩ B| ≤ min(|A|,|B|) and |A ∪ B| ≥ max(|A|,|B|), so
/// J(A,B) ≤ min(|A|,|B|) / max(|A|,|B|). Returns 0 when either set is
/// empty (J is then 0 by convention). Because IEEE division is monotone and
/// the operands are integers, the computed bound dominates the computed
/// ExactJaccard value in floating point too, never just in the reals —
/// which is what lets the recommender's social fast path skip dominated
/// merge-intersections without changing any result.
double JaccardCardinalityBound(size_t size_a, size_t size_b);

/// Canonical display name of a user id; the datasets name users this way and
/// the chained hash table keys on these strings (the paper hashes "social
/// user names").
std::string UserName(UserId id);

}  // namespace vrec::social

#endif  // VREC_SOCIAL_DESCRIPTOR_H_
