#include "social/uig.h"

#include <cmath>
#include <map>
#include <string>

#include "util/check.h"

namespace vrec::social {

graph::WeightedGraph BuildUserInterestGraph(
    const std::vector<SocialDescriptor>& descriptors, size_t user_count) {
  // Accumulate co-occurrence counts first; inserting through
  // WeightedGraph::AddEdge per pair would scan adjacency lists repeatedly.
  std::map<std::pair<size_t, size_t>, double> weights;
  for (const SocialDescriptor& d : descriptors) {
    const auto& users = d.users();
    for (size_t i = 0; i < users.size(); ++i) {
      for (size_t j = i + 1; j < users.size(); ++j) {
        const auto u = static_cast<size_t>(users[i]);
        const auto v = static_cast<size_t>(users[j]);
        weights[{u, v}] += 1.0;
      }
    }
  }
  graph::WeightedGraph g(user_count);
  for (const auto& [edge, w] : weights) {
    g.AddEdge(edge.first, edge.second, w);
  }
  VREC_DCHECK_OK(CheckUigInvariants(g));
  return g;
}

Status CheckUigInvariants(const graph::WeightedGraph& uig) {
  if (const Status s = uig.CheckInvariants(); !s.ok()) return s;
  for (const graph::Edge& e : uig.edges()) {
    if (e.u == e.v) {
      return Status::Internal("UIG self loop at user " + std::to_string(e.u));
    }
    if (e.weight <= 0.0 || std::floor(e.weight) != e.weight) {
      return Status::Internal("UIG edge (" + std::to_string(e.u) + ", " +
                              std::to_string(e.v) +
                              ") weight is not a positive co-comment count");
    }
    if (uig.EdgeWeight(e.u, e.v) != uig.EdgeWeight(e.v, e.u)) {
      return Status::Internal("UIG edge (" + std::to_string(e.u) + ", " +
                              std::to_string(e.v) + ") is not symmetric");
    }
  }
  return Status::Ok();
}

}  // namespace vrec::social
