#include "social/uig.h"

#include <map>

namespace vrec::social {

graph::WeightedGraph BuildUserInterestGraph(
    const std::vector<SocialDescriptor>& descriptors, size_t user_count) {
  // Accumulate co-occurrence counts first; inserting through
  // WeightedGraph::AddEdge per pair would scan adjacency lists repeatedly.
  std::map<std::pair<size_t, size_t>, double> weights;
  for (const SocialDescriptor& d : descriptors) {
    const auto& users = d.users();
    for (size_t i = 0; i < users.size(); ++i) {
      for (size_t j = i + 1; j < users.size(); ++j) {
        const auto u = static_cast<size_t>(users[i]);
        const auto v = static_cast<size_t>(users[j]);
        weights[{u, v}] += 1.0;
      }
    }
  }
  graph::WeightedGraph g(user_count);
  for (const auto& [edge, w] : weights) {
    g.AddEdge(edge.first, edge.second, w);
  }
  return g;
}

}  // namespace vrec::social
