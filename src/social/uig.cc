#include "social/uig.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "util/check.h"

namespace vrec::social {

namespace {

using EdgeWeights = std::map<std::pair<size_t, size_t>, double>;

// Pairwise co-occurrence counts of one shard's descriptors (every
// `num_shards`-th descriptor starting at `shard`).
void AccumulateShard(const std::vector<const SocialDescriptor*>& descriptors,
                     size_t shard, size_t num_shards, EdgeWeights* weights) {
  for (size_t d = shard; d < descriptors.size(); d += num_shards) {
    if (descriptors[d] == nullptr) continue;
    const auto& users = descriptors[d]->users();
    for (size_t i = 0; i < users.size(); ++i) {
      for (size_t j = i + 1; j < users.size(); ++j) {
        const auto u = static_cast<size_t>(users[i]);
        const auto v = static_cast<size_t>(users[j]);
        (*weights)[{u, v}] += 1.0;
      }
    }
  }
}

}  // namespace

graph::WeightedGraph BuildUserInterestGraph(
    const std::vector<const SocialDescriptor*>& descriptors,
    size_t user_count, util::ThreadPool* pool) {
  // One weight map per worker shard; the merge adds whole counts, which is
  // exact in double, so the edge set and weights are independent of the
  // shard count (and thus of the thread count).
  const size_t workers = pool != nullptr ? pool->size() + 1 : 1;
  const size_t num_shards =
      std::max<size_t>(1, std::min(workers, descriptors.size()));
  std::vector<EdgeWeights> partial(num_shards);
  util::ParallelFor(num_shards > 1 ? pool : nullptr, num_shards,
                    [&](size_t s) {
                      AccumulateShard(descriptors, s, num_shards, &partial[s]);
                    });
  EdgeWeights merged = std::move(partial[0]);
  for (size_t s = 1; s < num_shards; ++s) {
    for (const auto& [edge, w] : partial[s]) merged[edge] += w;
  }
  graph::WeightedGraph g(user_count);
  for (const auto& [edge, w] : merged) {
    g.AddEdge(edge.first, edge.second, w);
  }
  VREC_DCHECK_OK(CheckUigInvariants(g));
  return g;
}

graph::WeightedGraph BuildUserInterestGraph(
    const std::vector<SocialDescriptor>& descriptors, size_t user_count) {
  std::vector<const SocialDescriptor*> views;
  views.reserve(descriptors.size());
  for (const SocialDescriptor& d : descriptors) views.push_back(&d);
  return BuildUserInterestGraph(views, user_count, nullptr);
}

Status CheckUigInvariants(const graph::WeightedGraph& uig) {
  if (const Status s = uig.CheckInvariants(); !s.ok()) return s;
  for (const graph::Edge& e : uig.edges()) {
    if (e.u == e.v) {
      return Status::Internal("UIG self loop at user " + std::to_string(e.u));
    }
    if (e.weight <= 0.0 || std::floor(e.weight) != e.weight) {
      return Status::Internal("UIG edge (" + std::to_string(e.u) + ", " +
                              std::to_string(e.v) +
                              ") weight is not a positive co-comment count");
    }
    if (uig.EdgeWeight(e.u, e.v) != uig.EdgeWeight(e.v, e.u)) {
      return Status::Internal("UIG edge (" + std::to_string(e.u) + ", " +
                              std::to_string(e.v) + ") is not symmetric");
    }
  }
  return Status::Ok();
}

}  // namespace vrec::social
