#include "social/subcommunity.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "graph/union_find.h"
#include "util/check.h"

namespace vrec::social {
namespace {

using graph::Edge;

// Deterministic ascending order used by both implementations, so the fast
// and literal variants agree even in the presence of tied weights.
bool AscendingEdgeOrder(const Edge& a, const Edge& b) {
  if (a.weight != b.weight) return a.weight < b.weight;
  if (a.u != b.u) return a.u < b.u;
  return a.v < b.v;
}

SubCommunityResult ResultFromSurvivors(const graph::WeightedGraph& uig,
                                       const std::vector<Edge>& survivors) {
  graph::UnionFind uf(uig.node_count());
  double lightest = std::numeric_limits<double>::infinity();
  for (const Edge& e : survivors) {
    uf.Union(e.u, e.v);
    lightest = std::min(lightest, e.weight);
  }
  SubCommunityResult result;
  result.num_communities = static_cast<int>(uf.num_sets());
  result.labels = uf.Labels();
  result.lightest_intra_weight = lightest;
  return result;
}

}  // namespace

StatusOr<SubCommunityResult> ExtractSubCommunities(
    const graph::WeightedGraph& uig, int k) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (static_cast<size_t>(k) > uig.node_count()) {
    return Status::InvalidArgument("k exceeds the number of users");
  }

  // Insert edges heaviest-first. While more than k components remain every
  // edge survives; once exactly k remain, the first edge that would merge
  // two components is the edge at which the literal lightest-edge-removal
  // loop stops — it and everything lighter are the removed prefix.
  std::vector<Edge> edges = uig.edges();
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) {
              return AscendingEdgeOrder(b, a);  // descending
            });

  graph::UnionFind uf(uig.node_count());
  std::vector<Edge> survivors;
  survivors.reserve(edges.size());
  for (const Edge& e : edges) {
    if (uf.num_sets() <= static_cast<size_t>(k) &&
        uf.Find(e.u) != uf.Find(e.v)) {
      break;  // this edge (and all lighter ones) are removed
    }
    uf.Union(e.u, e.v);
    survivors.push_back(e);
  }
  SubCommunityResult result = ResultFromSurvivors(uig, survivors);
  VREC_DCHECK_OK(CheckSubCommunityResult(result, uig, k));
  return result;
}

StatusOr<SubCommunityResult> ExtractSubCommunitiesLiteral(
    const graph::WeightedGraph& uig, int k) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (static_cast<size_t>(k) > uig.node_count()) {
    return Status::InvalidArgument("k exceeds the number of users");
  }

  std::vector<Edge> remaining = uig.edges();
  std::sort(remaining.begin(), remaining.end(), AscendingEdgeOrder);

  // Current component count with all remaining edges present.
  auto count_components = [&remaining, &uig]() {
    graph::UnionFind uf(uig.node_count());
    for (const Edge& e : remaining) uf.Union(e.u, e.v);
    return uf.num_sets();
  };

  // Figure 3: repeatedly remove the lightest edge until >= k components.
  // `remaining` is ascending, so the lightest edge is always at the front.
  size_t p = count_components();
  size_t removed_prefix = 0;
  while (p < static_cast<size_t>(k) && removed_prefix < remaining.size()) {
    ++removed_prefix;  // remove the lightest remaining edge
    graph::UnionFind uf(uig.node_count());
    for (size_t i = removed_prefix; i < remaining.size(); ++i) {
      uf.Union(remaining[i].u, remaining[i].v);
    }
    p = uf.num_sets();
  }

  std::vector<Edge> survivors(remaining.begin() +
                                  static_cast<long>(removed_prefix),
                              remaining.end());
  SubCommunityResult result = ResultFromSurvivors(uig, survivors);
  VREC_DCHECK_OK(CheckSubCommunityResult(result, uig, k));
  return result;
}

Status CheckSubCommunityResult(const SubCommunityResult& result,
                               const graph::WeightedGraph& uig, int k) {
  if (result.labels.size() != uig.node_count()) {
    return Status::Internal("one label per user expected");
  }
  if (result.num_communities < std::min<int>(
          k, static_cast<int>(uig.node_count()))) {
    return Status::Internal("extraction stopped at " +
                            std::to_string(result.num_communities) +
                            " communities, below the target " +
                            std::to_string(k));
  }
  std::vector<char> label_used(
      static_cast<size_t>(std::max(result.num_communities, 0)), 0);
  for (int label : result.labels) {
    if (label < 0 || label >= result.num_communities) {
      return Status::Internal("label " + std::to_string(label) +
                              " outside [0, num_communities)");
    }
    label_used[static_cast<size_t>(label)] = 1;
  }
  for (size_t label = 0; label < label_used.size(); ++label) {
    if (label_used[label] == 0) {
      return Status::Internal("community " + std::to_string(label) +
                              " has no members (labels not dense)");
    }
  }
  // Sub-communities refine the graph's connected components: two users only
  // share a label if the original UIG connects them.
  const auto [components, component_count] = uig.ConnectedComponents();
  std::vector<int> component_of_label(
      static_cast<size_t>(result.num_communities), -1);
  for (size_t u = 0; u < result.labels.size(); ++u) {
    int& c = component_of_label[static_cast<size_t>(result.labels[u])];
    if (c < 0) {
      c = components[u];
    } else if (c != components[u]) {
      return Status::Internal("community " +
                              std::to_string(result.labels[u]) +
                              " spans two disconnected components");
    }
  }
  // lightest_intra_weight is +infinity iff no intra-community edge exists;
  // when finite it must be the weight of some surviving intra edge, and no
  // intra edge can sit strictly between it and the removal threshold below
  // it is impossible to verify without the survivor set — so check the
  // weaker bound: some intra-community edge carries exactly that weight.
  double max_intra = -std::numeric_limits<double>::infinity();
  bool weight_seen = false;
  bool any_intra = false;
  for (const Edge& e : uig.edges()) {
    if (result.labels[e.u] != result.labels[e.v]) continue;
    any_intra = true;
    max_intra = std::max(max_intra, e.weight);
    weight_seen = weight_seen || e.weight == result.lightest_intra_weight;
  }
  if (std::isinf(result.lightest_intra_weight)) {
    if (any_intra && result.num_communities < static_cast<int>(
                         uig.node_count())) {
      return Status::Internal(
          "lightest_intra_weight infinite despite intra-community edges");
    }
  } else if (!weight_seen || result.lightest_intra_weight > max_intra) {
    return Status::Internal(
        "lightest_intra_weight does not match any intra-community edge");
  }
  return Status::Ok();
}

}  // namespace vrec::social
