#include "social/subcommunity.h"

#include <algorithm>
#include <limits>

#include "graph/union_find.h"

namespace vrec::social {
namespace {

using graph::Edge;

// Deterministic ascending order used by both implementations, so the fast
// and literal variants agree even in the presence of tied weights.
bool AscendingEdgeOrder(const Edge& a, const Edge& b) {
  if (a.weight != b.weight) return a.weight < b.weight;
  if (a.u != b.u) return a.u < b.u;
  return a.v < b.v;
}

SubCommunityResult ResultFromSurvivors(const graph::WeightedGraph& uig,
                                       const std::vector<Edge>& survivors) {
  graph::UnionFind uf(uig.node_count());
  double lightest = std::numeric_limits<double>::infinity();
  for (const Edge& e : survivors) {
    uf.Union(e.u, e.v);
    lightest = std::min(lightest, e.weight);
  }
  SubCommunityResult result;
  result.num_communities = static_cast<int>(uf.num_sets());
  result.labels = uf.Labels();
  result.lightest_intra_weight = lightest;
  return result;
}

}  // namespace

StatusOr<SubCommunityResult> ExtractSubCommunities(
    const graph::WeightedGraph& uig, int k) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (static_cast<size_t>(k) > uig.node_count()) {
    return Status::InvalidArgument("k exceeds the number of users");
  }

  // Insert edges heaviest-first. While more than k components remain every
  // edge survives; once exactly k remain, the first edge that would merge
  // two components is the edge at which the literal lightest-edge-removal
  // loop stops — it and everything lighter are the removed prefix.
  std::vector<Edge> edges = uig.edges();
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) {
              return AscendingEdgeOrder(b, a);  // descending
            });

  graph::UnionFind uf(uig.node_count());
  std::vector<Edge> survivors;
  survivors.reserve(edges.size());
  for (const Edge& e : edges) {
    if (uf.num_sets() <= static_cast<size_t>(k) &&
        uf.Find(e.u) != uf.Find(e.v)) {
      break;  // this edge (and all lighter ones) are removed
    }
    uf.Union(e.u, e.v);
    survivors.push_back(e);
  }
  return ResultFromSurvivors(uig, survivors);
}

StatusOr<SubCommunityResult> ExtractSubCommunitiesLiteral(
    const graph::WeightedGraph& uig, int k) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (static_cast<size_t>(k) > uig.node_count()) {
    return Status::InvalidArgument("k exceeds the number of users");
  }

  std::vector<Edge> remaining = uig.edges();
  std::sort(remaining.begin(), remaining.end(), AscendingEdgeOrder);

  // Current component count with all remaining edges present.
  auto count_components = [&remaining, &uig]() {
    graph::UnionFind uf(uig.node_count());
    for (const Edge& e : remaining) uf.Union(e.u, e.v);
    return uf.num_sets();
  };

  // Figure 3: repeatedly remove the lightest edge until >= k components.
  // `remaining` is ascending, so the lightest edge is always at the front.
  size_t p = count_components();
  size_t removed_prefix = 0;
  while (p < static_cast<size_t>(k) && removed_prefix < remaining.size()) {
    ++removed_prefix;  // remove the lightest remaining edge
    graph::UnionFind uf(uig.node_count());
    for (size_t i = removed_prefix; i < remaining.size(); ++i) {
      uf.Union(remaining[i].u, remaining[i].v);
    }
    p = uf.num_sets();
  }

  std::vector<Edge> survivors(remaining.begin() +
                                  static_cast<long>(removed_prefix),
                              remaining.end());
  return ResultFromSurvivors(uig, survivors);
}

}  // namespace vrec::social
