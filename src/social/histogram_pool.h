#ifndef VREC_SOCIAL_HISTOGRAM_POOL_H_
#define VREC_SOCIAL_HISTOGRAM_POOL_H_

#include <cstddef>
#include <vector>

#include "social/sar.h"
#include "util/status.h"

namespace vrec::social {

/// Structure-of-arrays scoring mirror for the per-record SparseHistograms
/// (`pooled_layout`): every histogram's bins and weights live in two flat
/// parallel arrays; a slot (= record index) resolves to a
/// SparseHistogramView in O(1). Unlike PreparedPool this is a mirror, not
/// the owner — `Record::social_vector` stays authoritative because the
/// mutation paths (RefreshVideoVector, ApplySocialUpdate) rebuild it —
/// so the pool supports in-place slot updates: an update appends the new
/// histogram at the tail and tombstones the old range, and the pool
/// compacts once dead bytes exceed live bytes.
class HistogramPool {
 public:
  struct Slot {
    size_t offset = 0;
    size_t len = 0;
    double sum = 0.0;
  };
  /// Flat arrays adopted zero-copy from a snapshot mapping; the pointers
  /// must outlive the pool (the engine pins the mapping). The first
  /// mutation copies them into owned storage via MaterializeOwned().
  struct AdoptedFlats {
    const int* bins = nullptr;
    const double* weights = nullptr;
    size_t len = 0;
  };

  /// Builds one slot per entry of `histograms`; a null or empty entry
  /// yields an empty slot. Replaces any previous contents.
  void Build(const std::vector<const SparseHistogram*>& histograms);

  void Clear();

  /// Restores a pool from snapshot state with the flat arrays borrowed
  /// from a mapping (zero-copy load). Validates slot ranges against
  /// `flats.len` before installing anything.
  [[nodiscard]] Status RestoreBorrowed(std::vector<Slot> slots,
                                       const AdoptedFlats& flats,
                                       size_t live_bytes, size_t dead_bytes);

  /// As RestoreBorrowed, but with owned copies (streamed load).
  [[nodiscard]] Status RestoreOwned(std::vector<Slot> slots,
                                    std::vector<int> bins,
                                    std::vector<double> weights,
                                    size_t live_bytes, size_t dead_bytes);

  /// Copies borrowed flats into owned storage; no-op when already owned.
  void MaterializeOwned();

  /// Replaces `slot`'s histogram (empty histogram = pure release).
  void Update(size_t slot, const SparseHistogram& histogram);

  /// Tombstones `slot` (RemoveVideo).
  void Release(size_t slot);

  size_t slot_count() const { return slots_.size(); }

  SparseHistogramView View(size_t slot) const {
    const Slot& s = slots_[slot];
    return {bins_data() + s.offset, weights_data() + s.offset, s.len, s.sum};
  }

  /// Cached total weight of `slot`'s histogram (== View(slot).sum); the
  /// posting-driven SAR score needs only this.
  double SumOf(size_t slot) const { return slots_[slot].sum; }

  /// Pooled bytes backing `slot`'s view — what the merge kernel streams.
  size_t BytesOf(size_t slot) const {
    return slots_[slot].len * (sizeof(int) + sizeof(double));
  }

  size_t live_bytes() const { return live_bytes_; }
  size_t dead_bytes() const { return dead_bytes_; }

  /// Snapshot accessors.
  const std::vector<Slot>& slots() const { return slots_; }
  size_t flat_len() const {
    return ext_bins_ != nullptr ? ext_len_ : bins_.size();
  }
  const int* bins_data() const {
    return ext_bins_ != nullptr ? ext_bins_ : bins_.data();
  }
  const double* weights_data() const {
    return ext_weights_ != nullptr ? ext_weights_ : weights_.data();
  }
  /// True while the flat arrays are borrowed from a snapshot mapping.
  bool borrowed() const { return ext_bins_ != nullptr; }

  /// Structural audit: slot ranges in bounds and non-overlapping counts,
  /// bins strictly sorted with positive weights, cached sums exact, byte
  /// accounting consistent.
  [[nodiscard]] Status CheckInvariants() const;

 private:
  void Append(Slot* slot, const SparseHistogram& histogram);
  void Compact();
  [[nodiscard]] Status ValidateRestored(const std::vector<Slot>& slots,
                                        size_t flat_len,
                                        size_t live_bytes) const;

  std::vector<int> bins_;
  std::vector<double> weights_;
  std::vector<Slot> slots_;
  size_t live_bytes_ = 0;
  size_t dead_bytes_ = 0;
  // Borrowed (snapshot-mapped) flats; when set, the owned vectors above
  // are empty and all reads go through the *_data() accessors.
  const int* ext_bins_ = nullptr;
  const double* ext_weights_ = nullptr;
  size_t ext_len_ = 0;
};

}  // namespace vrec::social

#endif  // VREC_SOCIAL_HISTOGRAM_POOL_H_
