#ifndef VREC_SOCIAL_HISTOGRAM_POOL_H_
#define VREC_SOCIAL_HISTOGRAM_POOL_H_

#include <cstddef>
#include <vector>

#include "social/sar.h"
#include "util/status.h"

namespace vrec::social {

/// Structure-of-arrays scoring mirror for the per-record SparseHistograms
/// (`pooled_layout`): every histogram's bins and weights live in two flat
/// parallel arrays; a slot (= record index) resolves to a
/// SparseHistogramView in O(1). Unlike PreparedPool this is a mirror, not
/// the owner — `Record::social_vector` stays authoritative because the
/// mutation paths (RefreshVideoVector, ApplySocialUpdate) rebuild it —
/// so the pool supports in-place slot updates: an update appends the new
/// histogram at the tail and tombstones the old range, and the pool
/// compacts once dead bytes exceed live bytes.
class HistogramPool {
 public:
  /// Builds one slot per entry of `histograms`; a null or empty entry
  /// yields an empty slot. Replaces any previous contents.
  void Build(const std::vector<const SparseHistogram*>& histograms);

  void Clear();

  /// Replaces `slot`'s histogram (empty histogram = pure release).
  void Update(size_t slot, const SparseHistogram& histogram);

  /// Tombstones `slot` (RemoveVideo).
  void Release(size_t slot);

  size_t slot_count() const { return slots_.size(); }

  SparseHistogramView View(size_t slot) const {
    const Slot& s = slots_[slot];
    return {bins_.data() + s.offset, weights_.data() + s.offset, s.len,
            s.sum};
  }

  /// Cached total weight of `slot`'s histogram (== View(slot).sum); the
  /// posting-driven SAR score needs only this.
  double SumOf(size_t slot) const { return slots_[slot].sum; }

  /// Pooled bytes backing `slot`'s view — what the merge kernel streams.
  size_t BytesOf(size_t slot) const {
    return slots_[slot].len * (sizeof(int) + sizeof(double));
  }

  size_t live_bytes() const { return live_bytes_; }
  size_t dead_bytes() const { return dead_bytes_; }

  /// Structural audit: slot ranges in bounds and non-overlapping counts,
  /// bins strictly sorted with positive weights, cached sums exact, byte
  /// accounting consistent.
  [[nodiscard]] Status CheckInvariants() const;

 private:
  struct Slot {
    size_t offset = 0;
    size_t len = 0;
    double sum = 0.0;
  };

  void Append(Slot* slot, const SparseHistogram& histogram);
  void Compact();

  std::vector<int> bins_;
  std::vector<double> weights_;
  std::vector<Slot> slots_;
  size_t live_bytes_ = 0;
  size_t dead_bytes_ = 0;
};

}  // namespace vrec::social

#endif  // VREC_SOCIAL_HISTOGRAM_POOL_H_
