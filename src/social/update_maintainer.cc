#include "social/update_maintainer.h"

#include <algorithm>
#include <limits>
#include <ranges>
#include <string>

#include "graph/union_find.h"
#include "util/check.h"

namespace vrec::social {

SubCommunityMaintainer::SubCommunityMaintainer(
    const graph::WeightedGraph& uig, const SubCommunityResult& extraction,
    int k, UserDictionary* dictionary)
    : k_(k),
      w_(extraction.lightest_intra_weight),
      next_label_(extraction.num_communities),
      dictionary_(dictionary),
      label_of_user_(extraction.labels) {
  for (size_t u = 0; u < label_of_user_.size(); ++u) {
    members_[label_of_user_[u]].insert(static_cast<UserId>(u));
  }
  // Reconstruct the surviving (active) edge set: extraction removes the
  // ascending-weight prefix, so every edge at least as heavy as the lightest
  // intra-community weight survived; everything else stays dormant.
  for (const graph::Edge& e : uig.edges()) {
    const bool intra = label_of_user_[e.u] == label_of_user_[e.v];
    if (intra && e.weight >= w_) {
      active_edges_[MakeKey(e.u, e.v)] = e.weight;
    } else {
      dormant_edges_[MakeKey(e.u, e.v)] = e.weight;
    }
  }
}

SubCommunityMaintainer::SubCommunityMaintainer(
    int k, double w, int next_label, std::vector<int> labels,
    const std::vector<EdgeRecord>& active,
    const std::vector<EdgeRecord>& dormant, UserDictionary* dictionary)
    : k_(k),
      w_(w),
      next_label_(next_label),
      dictionary_(dictionary),
      label_of_user_(std::move(labels)) {
  for (size_t u = 0; u < label_of_user_.size(); ++u) {
    members_[label_of_user_[u]].insert(static_cast<UserId>(u));
  }
  // Snapshots serialize these maps in iteration (= key) order, so the
  // end-hinted emplace is amortized O(1) per edge; unsorted input just
  // degrades to a normal insert. Duplicate keys are silently dropped here
  // and caught by Restore's size cross-check.
  for (const EdgeRecord& e : active) {
    active_edges_.emplace_hint(
        active_edges_.end(),
        MakeKey(static_cast<size_t>(e.u), static_cast<size_t>(e.v)),
        e.weight);
  }
  for (const EdgeRecord& e : dormant) {
    dormant_edges_.emplace_hint(
        dormant_edges_.end(),
        MakeKey(static_cast<size_t>(e.u), static_cast<size_t>(e.v)),
        e.weight);
  }
}

StatusOr<std::unique_ptr<SubCommunityMaintainer>>
SubCommunityMaintainer::Restore(int k, double w, int next_label,
                                std::vector<int> labels,
                                const std::vector<EdgeRecord>& active,
                                const std::vector<EdgeRecord>& dormant,
                                UserDictionary* dictionary) {
  if (k <= 0) {
    return Status::InvalidArgument("restored maintainer k must be positive");
  }
  std::unique_ptr<SubCommunityMaintainer> maintainer(
      new SubCommunityMaintainer(k, w, next_label, std::move(labels), active,
                                 dormant, dictionary));
  if (active.size() != maintainer->active_edges_.size() ||
      dormant.size() != maintainer->dormant_edges_.size()) {
    return Status::InvalidArgument(
        "restored maintainer edge lists contain duplicate keys");
  }
  // Cross-check that the active edges actually connect each community: the
  // persisted labels must be the connected components of the active edge
  // set (plus singletons), or maintenance splits would misbehave.
  graph::UnionFind uf(maintainer->label_of_user_.size());
  for (const auto& [key, weight] : maintainer->active_edges_) {
    if (key.first >= maintainer->label_of_user_.size() ||
        key.second >= maintainer->label_of_user_.size()) {
      return Status::InvalidArgument(
          "restored maintainer edge endpoint outside the user space");
    }
    uf.Union(key.first, key.second);
  }
  for (const auto& [label, mem] : maintainer->members_) {
    const size_t root = uf.Find(static_cast<size_t>(*mem.begin()));
    for (UserId u : mem) {
      if (uf.Find(static_cast<size_t>(u)) != root) {
        return Status::InvalidArgument(
            "restored community " + std::to_string(label) +
            " is not connected by the active edge set");
      }
    }
  }
  if (const Status s = maintainer->CheckInvariants(); !s.ok()) {
    return Status::InvalidArgument("restored maintainer invalid: " +
                                   s.message());
  }
  return maintainer;
}

std::vector<SubCommunityMaintainer::EdgeRecord>
SubCommunityMaintainer::ActiveEdges() const {
  std::vector<EdgeRecord> edges;
  edges.reserve(active_edges_.size());
  for (const auto& [key, weight] : active_edges_) {
    edges.push_back({static_cast<uint64_t>(key.first),
                     static_cast<uint64_t>(key.second), weight});
  }
  return edges;
}

std::vector<SubCommunityMaintainer::EdgeRecord>
SubCommunityMaintainer::DormantEdges() const {
  std::vector<EdgeRecord> edges;
  edges.reserve(dormant_edges_.size());
  for (const auto& [key, weight] : dormant_edges_) {
    edges.push_back({static_cast<uint64_t>(key.first),
                     static_cast<uint64_t>(key.second), weight});
  }
  return edges;
}

int SubCommunityMaintainer::CommunityOf(UserId user) const {
  if (user < 0 || static_cast<size_t>(user) >= label_of_user_.size()) {
    return -1;
  }
  return label_of_user_[static_cast<size_t>(user)];
}

std::vector<UserId> SubCommunityMaintainer::MembersOf(int label) const {
  const auto it = members_.find(label);
  if (it == members_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

Status SubCommunityMaintainer::CheckInvariants() const {
  size_t member_total = 0;
  for (const auto& [label, mem] : members_) {
    if (mem.empty()) {
      return Status::Internal("community " + std::to_string(label) +
                              " retained with no members");
    }
    if (label < 0 || label >= next_label_) {
      return Status::Internal("community label " + std::to_string(label) +
                              " outside the minted range");
    }
    member_total += mem.size();
    for (UserId u : mem) {
      if (u < 0 || static_cast<size_t>(u) >= label_of_user_.size()) {
        return Status::Internal("member user " + std::to_string(u) +
                                " outside the user space");
      }
      if (label_of_user_[static_cast<size_t>(u)] != label) {
        return Status::Internal("user " + std::to_string(u) +
                                " labeled differently from its member set");
      }
    }
  }
  if (member_total != label_of_user_.size()) {
    return Status::Internal(
        "member sets do not partition the user space: " +
        std::to_string(member_total) + " members for " +
        std::to_string(label_of_user_.size()) + " users");
  }
  double lightest_active = std::numeric_limits<double>::infinity();
  for (const auto& [key, weight] : active_edges_) {
    if (key.first >= label_of_user_.size() ||
        key.second >= label_of_user_.size()) {
      return Status::Internal("active edge endpoint outside the user space");
    }
    if (label_of_user_[key.first] != label_of_user_[key.second]) {
      return Status::Internal("active edge (" + std::to_string(key.first) +
                              ", " + std::to_string(key.second) +
                              ") crosses communities");
    }
    if (dormant_edges_.count(key) != 0) {
      return Status::Internal("edge (" + std::to_string(key.first) + ", " +
                              std::to_string(key.second) +
                              ") both active and dormant");
    }
    lightest_active = std::min(lightest_active, weight);
  }
  if (lightest_active != w_) {
    return Status::Internal("threshold w out of date");
  }
  for (const auto& [key, weight] : dormant_edges_) {
    if (key.first >= label_of_user_.size() ||
        key.second >= label_of_user_.size()) {
      return Status::Internal("dormant edge endpoint outside the user space");
    }
  }
  if (dictionary_ != nullptr) {
    if (const Status s = dictionary_->CheckInvariants(); !s.ok()) return s;
    if (dictionary_->user_count() != label_of_user_.size()) {
      return Status::Internal("dictionary user count out of sync");
    }
    for (size_t u = 0; u < label_of_user_.size(); ++u) {
      const auto community =
          dictionary_->CommunityOf(static_cast<UserId>(u));
      if (!community.has_value() || *community != label_of_user_[u]) {
        return Status::Internal("dictionary label out of sync for user " +
                                std::to_string(u));
      }
    }
  }
  return Status::Ok();
}

void SubCommunityMaintainer::Relabel(int from, int to,
                                     MaintenanceStats* stats) {
  auto it = members_.find(from);
  if (it == members_.end()) return;
  for (UserId u : it->second) {
    label_of_user_[static_cast<size_t>(u)] = to;
    members_[to].insert(u);
  }
  stats->dictionary_updates += it->second.size();
  members_.erase(it);
  dictionary_->ReplaceCommunity(from, to);
}

void SubCommunityMaintainer::RecomputeLightestIntraWeight() {
  double w = std::numeric_limits<double>::infinity();
  for (const auto& [key, weight] : active_edges_) w = std::min(w, weight);
  w_ = w;
}

bool SubCommunityMaintainer::SplitCommunity(int label,
                                            MaintenanceStats* stats) {
  const auto mit = members_.find(label);
  if (mit == members_.end() || mit->second.size() < 2) return false;

  // Local dense ids for the community members.
  std::vector<UserId> users(mit->second.begin(), mit->second.end());
  std::map<UserId, size_t> local;
  for (size_t i = 0; i < users.size(); ++i) local[users[i]] = i;

  // Internal active edges, ascending by weight.
  struct Internal {
    EdgeKey key;
    double weight;
    size_t lu, lv;
  };
  std::vector<Internal> internal;
  for (const auto& [key, weight] : active_edges_) {
    const auto a = local.find(static_cast<UserId>(key.first));
    const auto b = local.find(static_cast<UserId>(key.second));
    if (a != local.end() && b != local.end()) {
      internal.push_back({key, weight, a->second, b->second});
    }
  }
  std::sort(internal.begin(), internal.end(),
            [](const Internal& x, const Internal& y) {
              if (x.weight != y.weight) return x.weight < y.weight;
              return x.key < y.key;
            });

  // Remove the lightest internal edges until the induced subgraph has at
  // least two components (it may already be disconnected, e.g. after new
  // users were attached without edges).
  size_t removed_prefix = 0;
  std::vector<int> comp_labels;
  size_t comps = 0;
  while (true) {
    graph::UnionFind uf(users.size());
    for (size_t i = removed_prefix; i < internal.size(); ++i) {
      uf.Union(internal[i].lu, internal[i].lv);
    }
    comps = uf.num_sets();
    comp_labels = uf.Labels();
    if (comps >= 2 || removed_prefix >= internal.size()) break;
    ++removed_prefix;
  }
  if (comps < 2) return false;

  for (size_t i = 0; i < removed_prefix; ++i) {
    dormant_edges_[internal[i].key] = internal[i].weight;
    active_edges_.erase(internal[i].key);
  }

  // The largest component keeps the label; everything else becomes one new
  // sub-community (a binary split, as in Figure 5).
  std::vector<size_t> comp_size(comps, 0);
  for (int c : comp_labels) ++comp_size[static_cast<size_t>(c)];
  const size_t keep = static_cast<size_t>(
      std::max_element(comp_size.begin(), comp_size.end()) -
      comp_size.begin());

  const int new_label = next_label_++;
  for (size_t i = 0; i < users.size(); ++i) {
    if (static_cast<size_t>(comp_labels[i]) == keep) continue;
    const UserId u = users[i];
    mit->second.erase(u);
    members_[new_label].insert(u);
    label_of_user_[static_cast<size_t>(u)] = new_label;
    dictionary_->Assign(u, new_label);
    ++stats->dictionary_updates;
  }
  ++stats->splits;
  stats->changed_communities.push_back(label);
  stats->changed_communities.push_back(new_label);
  return true;
}

StatusOr<MaintenanceStats> SubCommunityMaintainer::ApplyUpdates(
    const std::vector<SocialConnection>& connections) {
  MaintenanceStats stats;
  stats.connections_processed = connections.size();

  // Batch the period's connections per user pair.
  std::map<EdgeKey, double> batch;
  for (const SocialConnection& c : connections) {
    if (c.u == c.v) continue;
    if (c.u < 0 || c.v < 0) {
      return Status::InvalidArgument("negative user id in connection");
    }
    batch[MakeKey(static_cast<size_t>(c.u), static_cast<size_t>(c.v))] +=
        c.weight;
  }

  // Admit new users. Ids must extend the user space contiguously; a new
  // user joins the community of a known co-commenter when one exists in
  // this batch, otherwise the currently smallest community.
  auto admit = [&](UserId nu, int community) {
    while (label_of_user_.size() < static_cast<size_t>(nu)) {
      // Fill any gap so ids stay dense (should not happen with well-formed
      // streams, but keeps the invariant safe).
      const auto filler = static_cast<UserId>(label_of_user_.size());
      label_of_user_.push_back(community);
      members_[community].insert(filler);
      dictionary_->Assign(filler, community);
      ++stats.users_added;
    }
    label_of_user_.push_back(community);
    members_[community].insert(nu);
    dictionary_->Assign(nu, community);
    ++stats.users_added;
    ++stats.dictionary_updates;
  };
  auto smallest_community = [&]() {
    int best = members_.begin()->first;
    size_t best_size = members_.begin()->second.size();
    for (const auto& [label, mem] : members_) {
      if (mem.size() < best_size) {
        best = label;
        best_size = mem.size();
      }
    }
    return best;
  };
  for (const EdgeKey& key : std::views::keys(batch)) {
    const auto ids = {static_cast<UserId>(key.first),
                      static_cast<UserId>(key.second)};
    for (UserId id : ids) {
      if (static_cast<size_t>(id) >= label_of_user_.size()) {
        // Prefer the known endpoint's community.
        const UserId other = (id == static_cast<UserId>(key.first))
                                 ? static_cast<UserId>(key.second)
                                 : static_cast<UserId>(key.first);
        int community = CommunityOf(other);
        if (community < 0) community = smallest_community();
        admit(id, community);
        stats.changed_communities.push_back(community);
      }
    }
  }

  // Merge phase + involvement tracking (Figure 5 lines 1-13).
  std::map<int, double> max_internal_weight;  // per involved community
  std::set<int> split_candidates;
  for (const auto& [key, weight] : batch) {
    const int cu = label_of_user_[key.first];
    const int cv = label_of_user_[key.second];
    if (cu == cv) {
      auto [it, inserted] = active_edges_.try_emplace(key, 0.0);
      if (inserted) {
        const auto dit = dormant_edges_.find(key);
        if (dit != dormant_edges_.end()) {
          it->second = dit->second;
          dormant_edges_.erase(dit);
        }
      }
      it->second += weight;
      auto& mx = max_internal_weight[cu];
      mx = std::max(mx, weight);
      continue;
    }
    // Cross-community: accumulate; merge when past the threshold w.
    double& dormant = dormant_edges_[key];
    dormant += weight;
    if (dormant > w_) {
      active_edges_[key] = dormant;
      dormant_edges_.erase(key);
      // Keep the larger community's id to minimize dictionary churn.
      int keep = cu, retire = cv;
      if (members_[retire].size() > members_[keep].size()) {
        std::swap(keep, retire);
      }
      Relabel(retire, keep, &stats);
      ++stats.merges;
      stats.changed_communities.push_back(keep);
      stats.changed_communities.push_back(retire);
      split_candidates.insert(keep);
      // The surviving id inherits involvement bookkeeping.
      auto rit = max_internal_weight.find(retire);
      if (rit != max_internal_weight.end()) {
        max_internal_weight[keep] =
            std::max(max_internal_weight[keep], rit->second);
        max_internal_weight.erase(rit);
      }
      max_internal_weight[keep] =
          std::max(max_internal_weight[keep], weight);
    }
  }

  // Weakened communities: involved in the update but with no strong new
  // internal connection.
  for (const auto& [community, mx] : max_internal_weight) {
    if (mx < w_) split_candidates.insert(community);
  }

  // Split phase (Figure 5 lines 14-20): restore the community count to k.
  while (num_communities() < k_) {
    bool split_done = false;
    for (int candidate : split_candidates) {
      if (members_.count(candidate) && SplitCommunity(candidate, &stats)) {
        split_done = true;
        break;
      }
    }
    if (!split_done) {
      // Fall back to the community owning the globally lightest active edge.
      double lightest = std::numeric_limits<double>::infinity();
      int target = -1;
      for (const auto& [key, weight] : active_edges_) {
        if (weight < lightest) {
          lightest = weight;
          target = label_of_user_[key.first];
        }
      }
      if (target < 0 || !SplitCommunity(target, &stats)) break;
    }
  }

  RecomputeLightestIntraWeight();

  // Dedupe the changed-communities report.
  std::sort(stats.changed_communities.begin(),
            stats.changed_communities.end());
  stats.changed_communities.erase(
      std::unique(stats.changed_communities.begin(),
                  stats.changed_communities.end()),
      stats.changed_communities.end());
  VREC_DCHECK_OK(CheckInvariants());
  return stats;
}

}  // namespace vrec::social
