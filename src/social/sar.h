#ifndef VREC_SOCIAL_SAR_H_
#define VREC_SOCIAL_SAR_H_

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "hashing/chained_hash_table.h"
#include "social/descriptor.h"
#include "util/arena.h"
#include "util/status.h"

namespace vrec::social {

/// Sparse SAR histogram: the non-zero bins of a descriptor's k-dimensional
/// user histogram as strictly bin-sorted (bin, weight) pairs, plus the
/// cached total weight. A descriptor touches only as many bins as it has
/// users, so queries and records carry O(nnz) state instead of O(k).
///
/// Invariants: bins strictly ascending, every weight > 0, and `sum` equals
/// the exact sum of the weights. Weights are whole user counts, which is
/// what makes the sparse arithmetic below bit-for-bit equal to the dense
/// path (integer sums commute exactly in double).
struct SparseHistogram {
  std::vector<std::pair<int, double>> bins;
  double sum = 0.0;

  bool empty() const { return bins.empty(); }
  size_t nnz() const { return bins.size(); }
  void clear() {
    bins.clear();
    sum = 0.0;
  }
  bool operator==(const SparseHistogram& other) const = default;
};

/// Non-owning structure-of-arrays view of a sparse histogram: the bins and
/// weights as two parallel flat arrays (as a HistogramPool stores them)
/// plus the cached sum. The merge kernel consumes either representation
/// through the same template core, so where the (bin, weight) pairs live —
/// per-record vector-of-pairs or pooled flat arrays — cannot change the
/// computed score.
struct SparseHistogramView {
  const int* bins = nullptr;
  const double* weights = nullptr;
  size_t len = 0;
  double sum = 0.0;

  bool empty() const { return len == 0; }
  size_t nnz() const { return len; }
};

/// Expands a sparse histogram back to a dense k-dimensional vector (the
/// naive/ablation representation). Bins must lie in [0, k).
std::vector<double> ToDense(const SparseHistogram& histogram, int k);

/// Structural audit of the SparseHistogram invariants (sorted bins, positive
/// weights, consistent cached sum, bins within [0, k) when k >= 0).
[[nodiscard]]
Status CheckSparseHistogram(const SparseHistogram& histogram, int k = -1);

/// How the user dictionary resolves a user name to its sub-community id.
enum class DictionaryLookup {
  /// Linear scan over the (name, cno) entries — the plain SAR scheme as the
  /// paper frames it: without the hash optimization, mapping a user name to
  /// its sub-community costs a dictionary scan. Figure 12(a)'s CSF-SAR
  /// curve is measured against this.
  kLinearScan,
  /// Binary search over the sorted (name, cno) array — an additional
  /// engineering alternative, between the scan and the hash.
  kSortedArray,
  /// The paper's chained hash table with shift-add-xor hashing — SAR-H.
  kChainedHash,
};

/// The SAR user dictionary (Section 4.2.2, "Social Descriptor
/// Vectorization"): maps every social user to its sub-community number so a
/// descriptor of n user ids can be folded into a k-bin histogram.
class UserDictionary {
 public:
  /// Builds the dictionary from per-user sub-community labels (label index =
  /// user id). `k` is the number of sub-communities (vector dimensionality).
  UserDictionary(const std::vector<int>& labels, int k,
                 DictionaryLookup lookup);

  /// Snapshot-restore form: as above, but pins the chained-hash bucket
  /// count instead of deriving it from labels.size(). A saved engine's
  /// table keeps its finalize-time geometry even after users were added by
  /// social updates, so a bit-identical restore must carry it explicitly.
  UserDictionary(const std::vector<int>& labels, int k,
                 DictionaryLookup lookup, size_t hash_buckets);

  int k() const { return k_; }
  DictionaryLookup lookup() const { return lookup_; }
  size_t user_count() const { return user_count_; }

  /// Sub-community of a user (by name, as the paper's hash table is keyed);
  /// nullopt for unknown users.
  std::optional<int> CommunityOfName(const std::string& name) const;

  /// Sub-community of a user id; nullopt if out of range.
  std::optional<int> CommunityOf(UserId user) const;

  /// Re-assigns one user (new users may be added with id == user_count()).
  void Assign(UserId user, int community);

  /// Renames community `from` to `to` everywhere (merge support).
  void ReplaceCommunity(int from, int to);

  /// Converts a social descriptor into its k-dimensional user histogram by
  /// dictionary lookup: bin i counts the descriptor's users that fall in
  /// sub-community i. Unknown users are skipped.
  std::vector<double> Vectorize(const SocialDescriptor& descriptor) const;

  /// Sparse-output form of Vectorize: same lookups, but the result lists
  /// only the touched bins (strictly sorted) with the weight sum cached.
  /// `ToDense(VectorizeSparse(d), k())` equals `Vectorize(d)` exactly.
  SparseHistogram VectorizeSparse(const SocialDescriptor& descriptor) const;

  /// Scratch-free form for batch vectorization loops: `out` is overwritten
  /// and the per-user bin buffer bump-allocates from `arena` (null falls
  /// back to the heap). Replaces the old caller-threaded scratch-vector
  /// overload: a tight loop passes its thread's arena and performs no
  /// steady-state allocation.
  void VectorizeSparse(const SocialDescriptor& descriptor,
                       SparseHistogram* out, util::Arena* arena) const;

  /// Like Vectorize but resolves through user *names*, exercising the exact
  /// lookup path (binary search or chained hash) whose cost Figure 12(a)
  /// measures.
  std::vector<double> VectorizeByName(
      const std::vector<std::string>& names) const;

  /// Sparse-output form of VectorizeByName: identical name lookups (the
  /// SAR vs SAR-H cost being measured), sparse result.
  SparseHistogram VectorizeByNameSparse(
      const std::vector<std::string>& names) const;

  /// Total string comparisons performed by hash lookups (SAR-H cost model).
  uint64_t hash_comparisons() const { return hash_table_.comparisons(); }

  /// Snapshot accessors: the persisted state (labels + k + lookup mode +
  /// bucket geometry) from which the lookup structures rebuild exactly.
  const std::vector<int>& labels() const { return label_of_user_; }
  size_t hash_bucket_count() const { return hash_table_.bucket_count(); }

  /// Audits the dictionary: the lookup structure of the configured mode
  /// (linear/sorted entries or chained hash table, including its own
  /// structural invariants) holds exactly one entry per user whose
  /// sub-community agrees with the label array, and every label lies in
  /// [0, k).
  [[nodiscard]]
  Status CheckInvariants() const;

 private:
  void RebuildLookupStructures();

  int k_;
  DictionaryLookup lookup_;
  size_t user_count_;
  std::vector<int> label_of_user_;  // user id -> community
  /// (name, cno) entries; sorted only under kSortedArray.
  std::vector<std::pair<std::string, int>> entries_;
  hashing::ChainedHashTable hash_table_;  // for kChainedHash
};

/// Approximate social relevance over descriptor vectors (Equation 6):
///   sJ~ = sum_i min(dQ_i, dV_i) / sum_i max(dQ_i, dV_i).
/// Returns 0 when both vectors are all-zero. Vectors must share one size.
double ApproxJaccard(const std::vector<double>& a,
                     const std::vector<double>& b);

/// Sparse form of Equation 6: a two-pointer merge over the non-zero bins
/// computing Σmin, with the denominator derived as `a.sum + b.sum − Σmin`
/// (valid because all weights are non-negative, so
/// Σmax = Σa + Σb − Σmin). O(nnz_a + nnz_b) instead of O(k), and
/// bit-for-bit equal to the dense ApproxJaccard for whole-number weights:
/// the Σmin terms are the identical doubles in the identical order, and
/// integer-valued sums below 2^53 are exact under either association.
double ApproxJaccardSparse(const SparseHistogram& a, const SparseHistogram& b);

/// View forms of the sparse merge (`pooled_layout`): identical comparisons
/// and additions in identical order via one shared template core, so the
/// result is bit-for-bit the vector-of-pairs overload's.
double ApproxJaccardSparse(const SparseHistogram& a,
                           const SparseHistogramView& b);
double ApproxJaccardSparse(const SparseHistogramView& a,
                           const SparseHistogramView& b);

}  // namespace vrec::social

#endif  // VREC_SOCIAL_SAR_H_
