#include "social/descriptor.h"

#include <algorithm>

namespace vrec::social {

SocialDescriptor::SocialDescriptor(std::vector<UserId> users)
    : users_(std::move(users)) {
  std::sort(users_.begin(), users_.end());
  users_.erase(std::unique(users_.begin(), users_.end()), users_.end());
}

void SocialDescriptor::Add(UserId user) {
  const auto it = std::lower_bound(users_.begin(), users_.end(), user);
  if (it != users_.end() && *it == user) return;
  users_.insert(it, user);
}

bool SocialDescriptor::Contains(UserId user) const {
  return std::binary_search(users_.begin(), users_.end(), user);
}

double ExactJaccard(const SocialDescriptor& a, const SocialDescriptor& b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t intersection = 0;
  size_t i = 0, j = 0;
  const auto& ua = a.users();
  const auto& ub = b.users();
  while (i < ua.size() && j < ub.size()) {
    if (ua[i] < ub[j]) {
      ++i;
    } else if (ub[j] < ua[i]) {
      ++j;
    } else {
      ++intersection;
      ++i;
      ++j;
    }
  }
  const size_t uni = ua.size() + ub.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(uni);
}

double ExactJaccardByNames(const std::vector<std::string>& a,
                           const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t intersection = 0;
  for (const std::string& ua : a) {
    for (const std::string& ub : b) {
      if (ua == ub) {
        ++intersection;
        break;
      }
    }
  }
  const size_t uni = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(uni);
}

double JaccardCardinalityBound(size_t size_a, size_t size_b) {
  const size_t lo = std::min(size_a, size_b);
  if (lo == 0) return 0.0;
  const size_t hi = std::max(size_a, size_b);
  return static_cast<double>(lo) / static_cast<double>(hi);
}

std::string UserName(UserId id) { return "user_" + std::to_string(id); }

}  // namespace vrec::social
