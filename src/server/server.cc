#include "server/server.h"

#include <csignal>
#include <utility>

#include "util/check.h"

namespace vrec::server {
namespace {

// EnableSignalDrain plumbing. A signal handler may only touch
// async-signal-safe state, so the handler writes one byte to a process-wide
// wake pipe and the watcher thread does the actual (lock-taking) Shutdown.
// One server per process may own the handlers at a time.
std::atomic<int> g_signal_wake_fd{-1};
struct sigaction g_old_sigint;   // NOLINT(cert-err58-cpp)
struct sigaction g_old_sigterm;  // NOLINT(cert-err58-cpp)

void DrainSignalHandler(int /*signum*/) {
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) util::SignalWake(fd);
}

}  // namespace

Status ValidateServerOptions(const ServerOptions& options) {
  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument("port must be in [0, 65535]");
  }
  if (options.backlog < 1) {
    return Status::InvalidArgument("backlog must be >= 1");
  }
  if (options.max_payload_bytes < 64) {
    return Status::InvalidArgument(
        "max_payload_bytes must be >= 64 (smaller than any real request)");
  }
  if (options.max_connections < 1) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  return ValidateBatcherOptions(options.batcher);
}

RecommendServer::RecommendServer(const core::Recommender* recommender,
                                 ServerOptions options)
    : recommender_(recommender), options_(options) {}

RecommendServer::~RecommendServer() {
  Shutdown();
  if (signal_watcher_.joinable()) signal_watcher_.join();
}

Status RecommendServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("Start() already called");
  }
  if (recommender_ == nullptr || !recommender_->finalized()) {
    return Status::FailedPrecondition(
        "the server needs a finalized Recommender");
  }
  if (const Status s = ValidateServerOptions(options_); !s.ok()) return s;

  auto listen = util::ListenTcp(static_cast<uint16_t>(options_.port),
                                options_.backlog);
  if (!listen.ok()) return listen.status();
  listen_fd_ = std::move(*listen);
  const auto port = util::BoundPort(listen_fd_.get());
  if (!port.ok()) return port.status();
  port_ = *port;

  auto wake = util::MakeWakePipe();
  if (!wake.ok()) return wake.status();
  accept_wake_rd_ = std::move(wake->first);
  accept_wake_wr_ = std::move(wake->second);

  batcher_ = std::make_unique<MicroBatcher>(
      options_.batcher,
      [this](std::vector<BatchJob>&& jobs, FlushReason reason) {
        FlushBatch(std::move(jobs), reason);
      });

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

Status RecommendServer::EnableSignalDrain() {
  if (signal_drain_enabled_) {
    return Status::FailedPrecondition("signal drain already enabled");
  }
  int expected = -1;
  auto wake = util::MakeWakePipe();
  if (!wake.ok()) return wake.status();
  if (!g_signal_wake_fd.compare_exchange_strong(
          expected, wake->second.get())) {
    return Status::FailedPrecondition(
        "another server already owns the signal handlers");
  }
  signal_wake_rd_ = std::move(wake->first);
  signal_wake_wr_ = std::move(wake->second);

  struct sigaction action {};
  action.sa_handler = DrainSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  sigaction(SIGINT, &action, &g_old_sigint);
  sigaction(SIGTERM, &action, &g_old_sigterm);
  signal_drain_enabled_ = true;

  signal_watcher_ = std::thread([this] {
    uint8_t byte = 0;
    const StatusOr<bool> woke =
        util::ReadFullOrEof(signal_wake_rd_.get(), &byte, 1);
    if (!woke.ok()) return;  // pipe torn down without a wake
    bool already_stopped = false;
    {
      std::lock_guard<std::mutex> lock(stopped_mutex_);
      already_stopped = stopped_;
    }
    if (!already_stopped) Shutdown();
  });
  return Status::Ok();
}

void RecommendServer::Shutdown() {
  std::call_once(shutdown_once_, [this] { DoShutdown(); });
}

void RecommendServer::DoShutdown() {
  running_.store(false, std::memory_order_release);
  if (started_.load()) {
    // 1. Stop accepting: wake the accept loop and join it, so no new
    //    connection threads can appear below.
    if (accept_wake_wr_.valid()) util::SignalWake(accept_wake_wr_.get());
    if (accept_thread_.joinable()) accept_thread_.join();
    listen_fd_.Reset();

    // 2. Stop reading new frames on live connections (half-close; queued
    //    responses still go out the write side).
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      for (const auto& conn : connections_) {
        if (conn->fd.valid()) util::ShutdownRead(conn->fd.get());
      }
    }

    // 3. Flush: every admitted request is answered (in-flight batches
    //    complete, queued jobs are flushed in max_batch chunks).
    if (batcher_ != nullptr) batcher_->Drain();

    // 4. Connection threads observe EOF after writing their last
    //    response; join them all.
    ReapConnections(/*all=*/true);
  }

  if (signal_drain_enabled_) {
    sigaction(SIGINT, &g_old_sigint, nullptr);
    sigaction(SIGTERM, &g_old_sigterm, nullptr);
    g_signal_wake_fd.store(-1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(stopped_mutex_);
    stopped_ = true;
  }
  stopped_cv_.notify_all();
  // Wake the watcher (if any) so it can observe stopped_ and exit; it is
  // joined by the destructor, never here (the watcher itself may be the
  // thread running this drain).
  if (signal_drain_enabled_ && signal_wake_wr_.valid()) {
    util::SignalWake(signal_wake_wr_.get());
  }
}

void RecommendServer::WaitUntilStopped() {
  std::unique_lock<std::mutex> lock(stopped_mutex_);
  stopped_cv_.wait(lock, [this] { return stopped_; });
}

size_t RecommendServer::ReapConnections(bool all) {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  size_t live = 0;
  auto it = connections_.begin();
  while (it != connections_.end()) {
    Connection* conn = it->get();
    if (all || conn->done.load(std::memory_order_acquire)) {
      if (conn->thread.joinable()) conn->thread.join();
      it = connections_.erase(it);
    } else {
      ++live;
      ++it;
    }
  }
  return live;
}

void RecommendServer::CountMalformed() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++rejected_malformed_;
}

void RecommendServer::AcceptLoop() {
  for (;;) {
    auto conn_fd =
        util::AcceptWithWake(listen_fd_.get(), accept_wake_rd_.get());
    if (!conn_fd.ok()) return;     // listener broke; drain still works
    if (!conn_fd->valid()) return; // woken: shutdown requested

    const size_t live = ReapConnections(/*all=*/false);
    if (live >= options_.max_connections) {
      // Explicit backpressure at the connection level: answer, then close.
      QueryResponse response;
      response.status =
          Status::ResourceExhausted("connection limit reached");
      const auto frame = EncodeFrame(MessageType::kQueryResponse,
                                     EncodeQueryResponse(response));
      const Status written =
          util::WriteFull(conn_fd->get(), frame.data(), frame.size());
      static_cast<void>(written.ok());  // best effort on an overload path
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++rejected_overload_;
      continue;
    }

    auto conn = std::make_unique<Connection>();
    conn->fd = std::move(*conn_fd);
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void RecommendServer::ServeConnection(Connection* conn) {
  const int fd = conn->fd.get();
  const auto respond = [fd](MessageType type,
                            const std::vector<uint8_t>& payload) {
    const auto frame = EncodeFrame(type, payload);
    return util::WriteFull(fd, frame.data(), frame.size());
  };
  const auto respond_error = [&respond](const Status& status) {
    QueryResponse response;
    response.status = status;
    const Status written = respond(MessageType::kQueryResponse,
                                   EncodeQueryResponse(response));
    static_cast<void>(written.ok());  // the connection closes either way
  };

  for (;;) {
    uint8_t header_buf[kHeaderBytes];
    const auto got =
        util::ReadFullOrEof(fd, header_buf, sizeof(header_buf));
    if (!got.ok() || !*got) break;  // peer closed (or drain half-close)

    const auto header =
        DecodeHeader(header_buf, options_.max_payload_bytes);
    if (!header.ok()) {
      // Framing is broken (bad magic/version/oversized length): after
      // this point the byte stream cannot be trusted, so answer once and
      // close rather than resynchronize heuristically.
      CountMalformed();
      respond_error(header.status());
      break;
    }
    std::vector<uint8_t> payload(header->payload_len);
    if (header->payload_len > 0) {
      if (const Status s = util::ReadFull(fd, payload.data(),
                                          payload.size());
          !s.ok()) {
        CountMalformed();  // truncated mid-frame; no response possible
        break;
      }
    }
    if (const Status s = VerifyPayload(*header, payload); !s.ok()) {
      CountMalformed();
      respond_error(s);
      break;
    }

    Status written = Status::Ok();
    switch (header->type) {
      case MessageType::kQueryRequest:
        written =
            respond(MessageType::kQueryResponse, HandleQuery(payload));
        break;
      case MessageType::kQueryByIdRequest:
        written = respond(MessageType::kQueryResponse,
                          HandleQueryById(payload));
        break;
      case MessageType::kStatsRequest:
        written =
            respond(MessageType::kStatsResponse, EncodeServerStats(stats()));
        break;
      default:
        // A response type sent by a client is a protocol violation.
        CountMalformed();
        respond_error(
            Status::InvalidArgument("unexpected message type from client"));
        written = Status::FailedPrecondition("closing");
        break;
    }
    if (!written.ok()) break;
  }
  // The peer must see EOF now, not when the accept loop gets around to
  // reaping this connection (which may be never, if no further client
  // connects).
  util::ShutdownBoth(fd);
  conn->done.store(true, std::memory_order_release);
}

std::vector<uint8_t> RecommendServer::HandleQuery(
    const std::vector<uint8_t>& payload) {
  auto request = DecodeQueryRequest(payload);
  if (!request.ok()) {
    // The frame was intact (checksum passed) but the body is not a valid
    // query: an application-level error, the connection stays usable.
    CountMalformed();
    QueryResponse response;
    response.status = request.status();
    return EncodeQueryResponse(response);
  }
  core::BatchQuery query;
  query.series = std::move(request->series);
  query.descriptor = std::move(request->descriptor);
  query.exclude = request->exclude;
  return EncodeQueryResponse(
      AdmitAndWait(std::move(query), request->k, request->deadline_ms));
}

std::vector<uint8_t> RecommendServer::HandleQueryById(
    const std::vector<uint8_t>& payload) {
  const auto request = DecodeQueryByIdRequest(payload);
  if (!request.ok()) {
    CountMalformed();
    QueryResponse response;
    response.status = request.status();
    return EncodeQueryResponse(response);
  }
  const auto* series = recommender_->SeriesOf(request->video);
  const auto* descriptor = recommender_->DescriptorOf(request->video);
  if (series == nullptr || descriptor == nullptr) {
    QueryResponse response;
    response.status = Status::NotFound("unknown video id");
    return EncodeQueryResponse(response);
  }
  core::BatchQuery query;
  query.series = *series;
  query.descriptor = *descriptor;
  query.exclude = request->video;
  return EncodeQueryResponse(
      AdmitAndWait(std::move(query), request->k, request->deadline_ms));
}

QueryResponse RecommendServer::AdmitAndWait(core::BatchQuery query,
                                            int32_t k,
                                            uint32_t deadline_ms) {
  QueryResponse response;
  if (k < 1) {
    response.status = Status::InvalidArgument("k must be >= 1");
    return response;
  }
  BatchJob job;
  job.query = std::move(query);
  job.query.k = k;  // per-query k: batches may mix request sizes
  if (deadline_ms > 0) {
    job.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(deadline_ms);
  }
  job.response = std::make_shared<PendingResponse>();
  const auto pending = job.response;

  // Admission is counted before Submit: the batcher worker can flush the
  // job before Submit even returns, and a concurrent stats() must never
  // observe completed > accepted (the accepted == completed + expired
  // invariant). An extra accepted_ during a failed Submit just looks like
  // an in-flight request, which is the benign direction.
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++accepted_;
  }
  const Status admitted = batcher_->Submit(std::move(job));
  if (!admitted.ok()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    --accepted_;
    if (admitted.code() == Status::Code::kResourceExhausted) {
      ++rejected_overload_;
    }
    response.status = admitted;
    return response;
  }
  core::BatchResult result = pending->Take();
  response.status = std::move(result.status);
  response.results = std::move(result.results);
  response.timing = result.timing;
  return response;
}

void RecommendServer::FlushBatch(std::vector<BatchJob>&& jobs,
                                 FlushReason /*reason*/) {
  // Deadlines are enforced here, at dequeue: a request that spent its
  // budget in the admission queue is answered with kDeadlineExceeded
  // instead of consuming RecommendBatch time (or being dropped silently).
  const auto now = std::chrono::steady_clock::now();
  std::vector<core::BatchQuery> queries;
  std::vector<BatchJob*> live;
  queries.reserve(jobs.size());
  live.reserve(jobs.size());
  for (auto& job : jobs) {
    if (job.deadline < now) {
      core::BatchResult result;
      result.status =
          Status::DeadlineExceeded("deadline expired in the admission queue");
      {
        // Counted before Complete(), like completed_: once a client holds
        // its answer, a stats() read must already reflect it.
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++expired_deadline_;
      }
      job.response->Complete(std::move(result));
      continue;
    }
    queries.push_back(std::move(job.query));
    live.push_back(&job);
  }
  if (live.empty()) return;

  // Every admitted query carries its own k (>= 1, validated at admission),
  // so the call-level fallback is never used.
  auto results = recommender_->RecommendBatch(queries, /*k=*/1);
  VREC_CHECK(results.size() == live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++completed_;
      timing_totals_.social_ms += results[i].timing.social_ms;
      timing_totals_.content_ms += results[i].timing.content_ms;
      timing_totals_.refine_ms += results[i].timing.refine_ms;
      timing_totals_.total_ms += results[i].timing.total_ms;
      timing_totals_.candidates += results[i].timing.candidates;
      timing_totals_.emd_calls += results[i].timing.emd_calls;
      timing_totals_.pairs_pruned += results[i].timing.pairs_pruned;
      timing_totals_.candidates_pruned +=
          results[i].timing.candidates_pruned;
    }
    live[i]->response->Complete(std::move(results[i]));
  }
}

ServerStats RecommendServer::stats() const {
  ServerStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out.accepted = accepted_;
    out.rejected_overload = rejected_overload_;
    out.rejected_malformed = rejected_malformed_;
    out.expired_deadline = expired_deadline_;
    out.completed = completed_;
    out.timing_totals = timing_totals_;
  }
  if (batcher_ != nullptr) {
    out.batches_full = batcher_->batches_full();
    out.batches_timer = batcher_->batches_timer();
    out.batch_size_histogram = batcher_->batch_size_histogram();
  }
  return out;
}

}  // namespace vrec::server
