#include "server/server.h"

#include <csignal>
#include <utility>

#include "util/check.h"

namespace vrec::server {
namespace {

// EnableSignalDrain plumbing. A signal handler may only touch
// async-signal-safe state, so the handler writes one byte to a process-wide
// wake pipe and the watcher thread does the actual (lock-taking) Shutdown.
// One server per process may own the handlers at a time.
//
// Ordering contract (the handler's load is relaxed): the fd is published
// by the CAS in EnableSignalDrain *before* sigaction() installs the
// handler, and sigaction is itself a synchronization point between the
// installing thread and any thread the handler later runs on — so no
// handler can observe the pre-CAS value. The -1 store during shutdown
// happens after the old handlers are restored; a racing handler that
// still reads the live fd writes one byte to a pipe the watcher is
// draining anyway (benign).
std::atomic<int> g_signal_wake_fd{-1};
struct sigaction g_old_sigint;   // NOLINT(cert-err58-cpp)
struct sigaction g_old_sigterm;  // NOLINT(cert-err58-cpp)

void DrainSignalHandler(int /*signum*/) {
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) util::SignalWake(fd);
}

}  // namespace

Status ValidateServerOptions(const ServerOptions& options) {
  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument("port must be in [0, 65535]");
  }
  if (options.backlog < 1) {
    return Status::InvalidArgument("backlog must be >= 1");
  }
  if (options.max_payload_bytes < 64) {
    return Status::InvalidArgument(
        "max_payload_bytes must be >= 64 (smaller than any real request)");
  }
  if (options.max_connections < 1) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  return ValidateBatcherOptions(options.batcher);
}

RecommendServer::RecommendServer(const core::QueryEngine* engine,
                                 ServerOptions options)
    : engine_(engine), options_(options) {}

RecommendServer::~RecommendServer() {
  Shutdown();
  if (signal_watcher_.joinable()) signal_watcher_.join();
}

Status RecommendServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("Start() already called");
  }
  if (engine_ == nullptr || !engine_->finalized()) {
    return Status::FailedPrecondition(
        "the server needs a finalized query engine");
  }
  if (const Status s = ValidateServerOptions(options_); !s.ok()) return s;

  auto listen = util::ListenTcp(static_cast<uint16_t>(options_.port),
                                options_.backlog);
  if (!listen.ok()) return listen.status();
  const auto port = util::BoundPort(listen->get());
  if (!port.ok()) return port.status();
  port_ = *port;

  batcher_ = std::make_unique<MicroBatcher>(
      options_.batcher,
      [this](std::vector<BatchJob>&& jobs, FlushReason reason) {
        FlushBatch(std::move(jobs), reason);
      });
  if (options_.result_cache_capacity > 0) {
    cache_ = std::make_unique<ResultCache>(options_.result_cache_capacity);
  }

  ReactorOptions reactor_options;
  reactor_options.max_payload_bytes = options_.max_payload_bytes;
  reactor_options.max_connections = options_.max_connections;
  // The upcast is spelled here because the base is private: only members
  // may convert, and make_unique's internals are not one.
  reactor_ = std::make_unique<Reactor>(std::move(*listen), reactor_options,
                                       static_cast<ReactorEvents*>(this));
  if (const Status s = reactor_->Start(); !s.ok()) return s;

  running_.store(true, std::memory_order_release);
  return Status::Ok();
}

Status RecommendServer::EnableSignalDrain() {
  if (signal_drain_enabled_) {
    return Status::FailedPrecondition("signal drain already enabled");
  }
  int expected = -1;
  auto wake = util::MakeWakePipe();
  if (!wake.ok()) return wake.status();
  if (!g_signal_wake_fd.compare_exchange_strong(
          expected, wake->second.get())) {
    return Status::FailedPrecondition(
        "another server already owns the signal handlers");
  }
  signal_wake_rd_ = std::move(wake->first);
  signal_wake_wr_ = std::move(wake->second);

  struct sigaction action {};
  action.sa_handler = DrainSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  sigaction(SIGINT, &action, &g_old_sigint);
  sigaction(SIGTERM, &action, &g_old_sigterm);
  signal_drain_enabled_ = true;

  signal_watcher_ = std::thread([this] {
    uint8_t byte = 0;
    const StatusOr<bool> woke =
        util::ReadFullOrEof(signal_wake_rd_.get(), &byte, 1);
    if (!woke.ok()) return;  // pipe torn down without a wake
    bool already_stopped = false;
    {
      util::MutexLock lock(stopped_mutex_);
      already_stopped = stopped_;
    }
    if (!already_stopped) Shutdown();
  });
  return Status::Ok();
}

void RecommendServer::Shutdown() {
  std::call_once(shutdown_once_, [this] { DoShutdown(); });
}

void RecommendServer::DoShutdown() {
  running_.store(false, std::memory_order_release);
  if (started_.load()) {
    // 1. Stop accepting and parsing: the reactor closes the listener,
    //    half-closes every connection's read side (the peer sees EOF for
    //    its next request) and drops idle connections.
    if (reactor_ != nullptr) reactor_->BeginDrain();

    // 2. Flush: every admitted request is answered (in-flight batches
    //    complete, queued jobs are flushed in max_batch chunks). Each
    //    answer lands in the reactor's FIFO command queue before Drain()
    //    returns.
    if (batcher_ != nullptr) batcher_->Drain();

    // 3. The reactor writes out the queued answers, closes each
    //    connection as its buffer drains, and its loop exits.
    if (reactor_ != nullptr) {
      reactor_->FinishDrain();
      reactor_->Join();
    }
  }

  if (signal_drain_enabled_) {
    sigaction(SIGINT, &g_old_sigint, nullptr);
    sigaction(SIGTERM, &g_old_sigterm, nullptr);
    g_signal_wake_fd.store(-1, std::memory_order_relaxed);
  }
  {
    util::MutexLock lock(stopped_mutex_);
    stopped_ = true;
  }
  stopped_cv_.NotifyAll();
  // Wake the watcher (if any) so it can observe stopped_ and exit; it is
  // joined by the destructor, never here (the watcher itself may be the
  // thread running this drain).
  if (signal_drain_enabled_ && signal_wake_wr_.valid()) {
    util::SignalWake(signal_wake_wr_.get());
  }
}

void RecommendServer::WaitUntilStopped() {
  util::MutexLock lock(stopped_mutex_);
  while (!stopped_) stopped_cv_.Wait(stopped_mutex_);
}

void RecommendServer::CountMalformed() {
  util::MutexLock lock(stats_mutex_);
  ++rejected_malformed_;
}

void RecommendServer::SendError(ConnId conn, const Status& status) {
  QueryResponse response;
  response.status = status;
  reactor_->SendResponse(conn, EncodeFrame(MessageType::kQueryResponse,
                                           EncodeQueryResponse(response)));
}

void RecommendServer::OnMalformed(ConnId conn, const Status& error) {
  // Framing is broken (bad magic/version/oversized length): after this
  // point the byte stream cannot be trusted, so answer once and close
  // rather than resynchronize heuristically.
  CountMalformed();
  SendError(conn, error);
  reactor_->CloseAfterFlush(conn);
}

void RecommendServer::OnDisconnect(ConnId /*conn*/, bool mid_frame) {
  // A peer that hung up mid-frame (decoded header, truncated payload)
  // counts as malformed — same accounting as the blocking server's
  // truncated ReadFull. A between-frames hangup is just a client leaving.
  if (mid_frame) CountMalformed();
}

void RecommendServer::OnOverflow(ConnId conn) {
  // Explicit backpressure at the connection level: answer, then close.
  {
    util::MutexLock lock(stats_mutex_);
    ++rejected_overload_;
  }
  SendError(conn, Status::ResourceExhausted("connection limit reached"));
  reactor_->CloseAfterFlush(conn);
}

void RecommendServer::OnFrame(ConnId conn, const FrameHeader& header,
                              std::vector<uint8_t> payload) {
  if (const Status s = VerifyPayload(header, payload); !s.ok()) {
    CountMalformed();
    SendError(conn, s);
    reactor_->CloseAfterFlush(conn);
    return;
  }

  switch (header.type) {
    case MessageType::kStatsRequest:
      reactor_->SendResponse(
          conn,
          EncodeFrame(MessageType::kStatsResponse,
                      EncodeServerStats(stats())));
      return;

    case MessageType::kQueryRequest: {
      auto request = DecodeQueryRequest(payload);
      if (!request.ok()) {
        // The frame was intact (checksum passed) but the body is not a
        // valid query: an application-level error, the connection stays
        // usable.
        CountMalformed();
        SendError(conn, request.status());
        return;
      }
      core::BatchQuery query;
      query.series = std::move(request->series);
      query.descriptor = std::move(request->descriptor);
      query.exclude = request->exclude;
      AdmitQuery(conn, std::move(query), request->k, request->deadline_ms,
                 /*cacheable=*/false, /*video=*/-1, /*generation=*/0);
      return;
    }

    case MessageType::kQueryByIdRequest: {
      const auto request = DecodeQueryByIdRequest(payload);
      if (!request.ok()) {
        CountMalformed();
        SendError(conn, request.status());
        return;
      }
      const uint64_t generation = engine_->generation();
      if (cache_ != nullptr) {
        if (auto hit =
                cache_->Lookup(request->video, request->k, generation)) {
          // Replay the miss's exact response frame: bit-for-bit identical,
          // no batcher involvement (not accepted, not completed).
          reactor_->SendResponse(conn, std::move(*hit));
          return;
        }
      }
      // ResolveById copies the query material out of the engine — which
      // may mean a fetch from the owning shard when the engine is a
      // wire-backed router.
      auto query = engine_->ResolveById(request->video);
      if (!query.ok()) {
        SendError(conn, query.status());
        return;
      }
      AdmitQuery(conn, std::move(query).value(), request->k,
                 request->deadline_ms,
                 /*cacheable=*/cache_ != nullptr, request->video,
                 generation);
      return;
    }

    case MessageType::kFetchVideoRequest: {
      // Shard-to-shard resolve (v4): answered inline on the reactor thread
      // — a map lookup plus one series copy, no batcher involvement.
      // Application errors (unknown id) ride in the response's status
      // field; the connection stays usable either way.
      const auto request = DecodeFetchVideoRequest(payload);
      if (!request.ok()) {
        CountMalformed();
        SendError(conn, request.status());
        return;
      }
      FetchVideoResponse response;
      auto resolved = engine_->ResolveById(request->video);
      if (resolved.ok()) {
        response.series = std::move(resolved->series);
        response.descriptor = std::move(resolved->descriptor);
      } else {
        response.status = resolved.status();
      }
      reactor_->SendResponse(
          conn, EncodeFrame(MessageType::kFetchVideoResponse,
                            EncodeFetchVideoResponse(response)));
      return;
    }

    default:
      // A response type sent by a client is a protocol violation.
      CountMalformed();
      SendError(conn,
                Status::InvalidArgument("unexpected message type from client"));
      reactor_->CloseAfterFlush(conn);
      return;
  }
}

void RecommendServer::AdmitQuery(ConnId conn, core::BatchQuery query,
                                 int32_t k, uint32_t deadline_ms,
                                 bool cacheable, int64_t video,
                                 uint64_t generation) {
  if (k < 1) {
    SendError(conn, Status::InvalidArgument("k must be >= 1"));
    return;
  }
  BatchJob job;
  job.query = std::move(query);
  job.query.k = k;  // per-query k: batches may mix request sizes
  if (deadline_ms > 0) {
    job.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(deadline_ms);
  }
  job.tag = conn;

  // The context goes in before Submit: the batcher worker can flush the
  // job (and look the context up) before Submit even returns.
  {
    util::MutexLock lock(pending_mutex_);
    pending_[conn] = PendingQuery{cacheable, video, k, generation};
  }
  // Admission is counted before Submit for the same reason: a concurrent
  // stats() must never observe completed > accepted (the accepted ==
  // completed + expired invariant). An extra accepted_ during a failed
  // Submit just looks like an in-flight request, the benign direction.
  {
    util::MutexLock lock(stats_mutex_);
    ++accepted_;
  }
  const Status admitted = batcher_->Submit(std::move(job));
  if (!admitted.ok()) {
    {
      util::MutexLock lock(stats_mutex_);
      --accepted_;
      if (admitted.code() == Status::Code::kResourceExhausted) {
        ++rejected_overload_;
      }
    }
    static_cast<void>(TakePending(conn));
    SendError(conn, admitted);  // backpressure: the connection stays usable
  }
}

std::optional<RecommendServer::PendingQuery> RecommendServer::TakePending(
    ConnId conn) {
  util::MutexLock lock(pending_mutex_);
  const auto it = pending_.find(conn);
  if (it == pending_.end()) return std::nullopt;
  PendingQuery out = it->second;
  pending_.erase(it);
  return out;
}

void RecommendServer::FlushBatch(std::vector<BatchJob>&& jobs,
                                 FlushReason /*reason*/) {
  // Deadlines are enforced here, at dequeue: a request that spent its
  // budget in the admission queue is answered with kDeadlineExceeded
  // instead of consuming RecommendBatch time (or being dropped silently).
  const auto now = std::chrono::steady_clock::now();
  std::vector<core::BatchQuery> queries;
  std::vector<BatchJob*> live;
  queries.reserve(jobs.size());
  live.reserve(jobs.size());
  for (auto& job : jobs) {
    if (job.deadline < now) {
      {
        // Counted before the response is queued, like completed_: once a
        // client holds its answer, a stats() read must already reflect it.
        util::MutexLock lock(stats_mutex_);
        ++expired_deadline_;
      }
      static_cast<void>(TakePending(job.tag));
      QueryResponse response;
      response.status =
          Status::DeadlineExceeded("deadline expired in the admission queue");
      reactor_->SendResponse(
          job.tag, EncodeFrame(MessageType::kQueryResponse,
                               EncodeQueryResponse(response)));
      continue;
    }
    queries.push_back(std::move(job.query));
    live.push_back(&job);
  }
  if (live.empty()) return;

  // Every admitted query carries its own k (>= 1, validated at admission),
  // so the call-level fallback is never used.
  auto results = engine_->RecommendBatch(queries, /*k=*/1);
  VREC_CHECK(results.size() == live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    {
      util::MutexLock lock(stats_mutex_);
      ++completed_;
      // Field-wise accumulation so every QueryTiming counter — including
      // the social fast-path ones — reaches the stats verb.
      timing_totals_ += results[i].timing;
    }
    QueryResponse response;
    response.timing = results[i].timing;
    response.status = std::move(results[i].status);
    response.results = std::move(results[i].results);
    const bool answered_ok = response.status.ok();
    auto frame = EncodeFrame(MessageType::kQueryResponse,
                             EncodeQueryResponse(response));
    const auto ctx = TakePending(live[i]->tag);
    if (answered_ok && ctx.has_value() && ctx->cacheable &&
        cache_ != nullptr &&
        engine_->generation() == ctx->generation) {
      cache_->Insert(ctx->video, ctx->k, ctx->generation, frame);
    }
    reactor_->SendResponse(live[i]->tag, std::move(frame));
  }
}

ServerStats RecommendServer::stats() const {
  ServerStats out;
  {
    util::MutexLock lock(stats_mutex_);
    out.accepted = accepted_;
    out.rejected_overload = rejected_overload_;
    out.rejected_malformed = rejected_malformed_;
    out.expired_deadline = expired_deadline_;
    out.completed = completed_;
    out.timing_totals = timing_totals_;
  }
  if (batcher_ != nullptr) {
    out.batches_full = batcher_->batches_full();
    out.batches_timer = batcher_->batches_timer();
    out.batch_size_histogram = batcher_->batch_size_histogram();
  }
  if (cache_ != nullptr) {
    const ResultCache::Counters counters = cache_->counters();
    out.cache_hits = counters.hits;
    out.cache_misses = counters.misses;
    out.cache_evictions = counters.evictions;
    out.cache_invalidated = counters.invalidated;
  }
  if (reactor_ != nullptr) {
    out.open_connections = reactor_->open_connections();
  }
  return out;
}

}  // namespace vrec::server
