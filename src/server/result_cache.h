#ifndef VREC_SERVER_RESULT_CACHE_H_
#define VREC_SERVER_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/recommender.h"
#include "util/sync.h"

namespace vrec::server {

/// Bounded LRU cache over *encoded* by-id query responses.
///
/// The by-id serving path is fully determined by (video id, k) once the
/// recommender's configuration and corpus are fixed, so the cache stores the
/// exact response frame a miss produced and replays those bytes on a hit —
/// hits are bit-for-bit identical to misses by construction. Configuration
/// is pinned at construction via an options fingerprint baked into the
/// instance (one server owns one recommender); corpus changes are caught by
/// the generation stamp: every entry records the Recommender::generation()
/// it was computed under, and a lookup whose caller-supplied generation
/// differs erases the entry and reports a miss (counted as `invalidated`).
///
/// Thread-safe: the reactor thread looks up, the batcher worker inserts.
class ResultCache {
 public:
  /// `capacity` 0 disables the cache (every Lookup misses, Insert drops).
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cached response frame for (video, k), if present and stamped with
  /// `generation`. A stale entry is erased and counted as invalidated (the
  /// lookup still reports a miss).
  [[nodiscard]]
  std::optional<std::vector<uint8_t>> Lookup(int64_t video, int k,
                                             uint64_t generation);

  /// Stores the encoded response frame for (video, k) computed under
  /// `generation`, evicting the least-recently-used entry when full.
  /// Re-inserting an existing key overwrites and refreshes its recency.
  void Insert(int64_t video, int k, uint64_t generation,
              std::vector<uint8_t> frame);

  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;       // includes invalidated lookups
    uint64_t evictions = 0;    // capacity-pressure removals
    uint64_t invalidated = 0;  // generation-mismatch removals
  };
  Counters counters() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Key {
    int64_t video = -1;
    int k = 0;
    bool operator==(const Key& other) const {
      return video == other.video && k == other.k;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      // Splitmix-style mix of the two fields; k lives in the high bits so
      // (v, k) and (v', k') collide no more than a single mixed word does.
      uint64_t x = static_cast<uint64_t>(key.video) +
                   (static_cast<uint64_t>(static_cast<uint32_t>(key.k)) << 32);
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      return static_cast<size_t>(x);
    }
  };
  struct Entry {
    Key key;
    uint64_t generation = 0;
    std::vector<uint8_t> frame;
  };

  const size_t capacity_;
  mutable util::Mutex mutex_;
  /// front = most recently used; index_ maps keys to their lru_ node. One
  /// lock covers both so the list and the map can never disagree.
  std::list<Entry> lru_ VREC_GUARDED_BY(mutex_);
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_
      VREC_GUARDED_BY(mutex_);
  Counters counters_ VREC_GUARDED_BY(mutex_);
};

/// A coarse fingerprint of every RecommenderOptions field that can change
/// by-id results, for keying cached responses across server restarts or in
/// multi-tenant setups (within one server the recommender is fixed, so the
/// fingerprint mostly documents *why* the in-process cache may omit the
/// options from its key). FNV-1a over the scoring-relevant fields only —
/// exact-by-construction toggles (prune_*, sparse_social, ...) and threading
/// knobs are deliberately excluded because they cannot alter results.
[[nodiscard]]
uint64_t OptionsFingerprint(const core::RecommenderOptions& options);

}  // namespace vrec::server

#endif  // VREC_SERVER_RESULT_CACHE_H_
