#ifndef VREC_SERVER_REACTOR_H_
#define VREC_SERVER_REACTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/wire.h"
#include "util/net.h"
#include "util/status.h"
#include "util/sync.h"

namespace vrec::server {

/// Identifies one client connection for the lifetime of the reactor.
/// Ids are never reused, so a completion that outlives its connection
/// (client gone before the batch flushed) addresses nothing — the response
/// is dropped instead of reaching a stranger.
using ConnId = uint64_t;

struct ReactorOptions {
  uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// Connections above the cap are still accepted, but only to deliver one
  /// backpressure answer (OnOverflow) before closing — the reactor itself
  /// imposes no thread cost per connection, so the cap is load shedding,
  /// not a resource limit.
  size_t max_connections = 64;
};

/// Protocol callbacks, all invoked on the reactor thread. The handler owns
/// every protocol decision (checksum verification, dispatch, error
/// answers); the reactor owns framing, buffering and socket lifecycle.
class ReactorEvents {
 public:
  virtual ~ReactorEvents() = default;

  /// One complete frame (header decoded; payload NOT yet checksum-
  /// verified). The reactor stops parsing this connection until
  /// SendResponse(conn, ...) is called — one request in flight per
  /// connection, which is exactly the old thread-per-connection pacing and
  /// what keeps responses in request order. The response may be sent
  /// synchronously from inside this call or later from any thread.
  virtual void OnFrame(ConnId conn, const FrameHeader& header,
                       std::vector<uint8_t> payload) = 0;

  /// The byte stream cannot be framed any more (bad magic/version/
  /// oversized length). The handler should SendResponse an error and
  /// CloseAfterFlush; the reactor stops parsing the connection either way.
  virtual void OnMalformed(ConnId conn, const Status& error) = 0;

  /// The peer went away (EOF, reset) outside a request/response exchange.
  /// `mid_frame` is true when a decoded header was left waiting for the
  /// rest of its payload — a truncated frame, counted as malformed by the
  /// handler. Partial headers (< kHeaderBytes trailing bytes) are NOT
  /// mid-frame: that is how every client hangs up between requests.
  virtual void OnDisconnect(ConnId conn, bool mid_frame) = 0;

  /// Accepted beyond max_connections. The handler should SendResponse a
  /// backpressure answer and CloseAfterFlush; no frames will be read.
  virtual void OnOverflow(ConnId conn) = 0;
};

/// Single-threaded level-triggered epoll reactor: owns the listener and
/// every client socket, does non-blocking framed reads/writes against
/// per-connection buffers, and surfaces complete frames to a ReactorEvents
/// handler. Responses produced on other threads (the micro-batcher worker)
/// re-enter through a command queue + wake pipe, so no thread ever blocks
/// on a socket.
///
/// Drain protocol (mirrors the thread-per-connection server):
///   1. BeginDrain()  — stop accepting, half-close reads, stop parsing
///                      buffered requests, close idle connections.
///   2. (caller drains the batcher: every admitted request is answered,
///      each answer lands in the command queue before Drain() returns)
///   3. FinishDrain() — close each connection once its write buffer
///                      flushes; the event loop exits when none remain.
///   4. Join()
/// BeginDrain/FinishDrain block until the loop has executed them, which
/// with the FIFO command queue guarantees every queued response is written
/// (or owned by a connection's write buffer) before FinishDrain acts.
class Reactor {
 public:
  /// `listen_fd` must already be listening; the reactor puts it in
  /// non-blocking mode. `events` must outlive the reactor.
  Reactor(util::UniqueFd listen_fd, const ReactorOptions& options,
          ReactorEvents* events);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Creates the epoll instance and starts the event-loop thread.
  [[nodiscard]]
  Status Start();

  /// Queues one encoded frame for `conn` and resumes parsing its buffered
  /// requests. Thread-safe; called on the reactor thread it runs inline,
  /// otherwise it goes through the command queue. A response for a
  /// connection that no longer exists is dropped (the old server's
  /// best-effort write to a hung-up peer).
  void SendResponse(ConnId conn, std::vector<uint8_t> frame);

  /// Marks `conn` to be closed once its write buffer drains; no further
  /// frames are parsed from it. Reactor thread only (i.e. from handlers).
  void CloseAfterFlush(ConnId conn);

  /// See the drain protocol above. Both block until the loop obeyed.
  void BeginDrain();
  void FinishDrain();

  /// Joins the event-loop thread (it exits after FinishDrain() once every
  /// connection is gone).
  void Join();

  /// Live connection gauge (includes connections draining their last
  /// response).
  size_t open_connections() const {
    return open_connections_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    util::UniqueFd fd;
    std::vector<uint8_t> read_buf;   // bytes received, not yet consumed
    size_t read_off = 0;             // consumed prefix of read_buf
    std::vector<uint8_t> write_buf;  // encoded frames awaiting the socket
    size_t write_off = 0;            // flushed prefix of write_buf
    bool awaiting_response = false;  // frame delivered, answer outstanding
    bool closing = false;            // close once write_buf drains
    bool read_eof = false;           // peer half-closed; buffer may remain
    bool in_parse = false;           // ProcessBuffer frame on the stack
    uint32_t interest = 0;           // kEpoll* mask currently registered
  };

  /// Signaled once a blocking command has been executed by the loop.
  struct CommandDone {
    util::Mutex mutex;
    util::CondVar cv;
    bool done VREC_GUARDED_BY(mutex) = false;
  };

  struct Command {
    enum class Kind { kSend, kBeginDrain, kFinishDrain };
    Kind kind = Kind::kSend;
    ConnId conn = 0;
    std::vector<uint8_t> frame;
    std::shared_ptr<CommandDone> signal;  // non-null for drain commands
  };

  void Loop();
  void RunCommands() VREC_EXCLUDES(commands_mutex_);
  void EnqueueCommand(Command command, bool blocking)
      VREC_EXCLUDES(commands_mutex_);
  void HandleAccept();
  void HandleReadable(ConnId id);
  /// Frames as much of the read buffer as the protocol allows (stops on
  /// awaiting_response / closing / drain).
  void ProcessBuffer(ConnId id);
  /// After EOF, once parsing can make no more progress: fires OnDisconnect
  /// and destroys the connection.
  void MaybeFinishEof(ConnId id);
  void SendResponseOnLoop(ConnId id, std::vector<uint8_t> frame);
  /// Writes until the socket would block. Returns false when the
  /// connection was destroyed (write error, or closing and fully flushed).
  bool TryFlush(ConnId id);
  void UpdateInterest(ConnId id);
  void Destroy(ConnId id);
  void BeginDrainOnLoop();
  void FinishDrainOnLoop();

  util::UniqueFd listen_fd_;
  const ReactorOptions options_;
  ReactorEvents* const events_;

  util::UniqueFd epoll_fd_;
  util::UniqueFd wake_rd_;
  util::UniqueFd wake_wr_;

  std::thread thread_;
  /// Written once by the loop thread before it reads any command; readers
  /// only compare against their own id. relaxed: a stale read just routes
  /// a send through the command queue, which is always correct.
  std::atomic<std::thread::id> loop_tid_{};
  bool started_ = false;
  bool joined_ = false;

  util::Mutex commands_mutex_;
  std::deque<Command> commands_ VREC_GUARDED_BY(commands_mutex_);

  // Loop-thread state. No lock and deliberately NOT annotated: only the
  // event-loop thread ever touches these (cross-thread work re-enters
  // through commands_ above), which a single-owner discipline the
  // analysis has no capability for. TSan covers this claim dynamically
  // (reactor_test.cc runs in the tsan stage).
  std::unordered_map<ConnId, Connection> connections_;
  ConnId next_conn_id_ = 2;  // 0 tags the listener, 1 the wake pipe
  bool draining_ = false;
  bool finish_requested_ = false;
  bool listener_open_ = false;

  /// Gauge only; relaxed because readers (stats snapshots) want a count,
  /// not an ordering relation with the connection state it summarizes.
  std::atomic<size_t> open_connections_{0};
};

}  // namespace vrec::server

#endif  // VREC_SERVER_REACTOR_H_
