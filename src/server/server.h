#ifndef VREC_SERVER_SERVER_H_
#define VREC_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/recommender.h"
#include "server/batcher.h"
#include "server/wire.h"
#include "util/net.h"
#include "util/status.h"

namespace vrec::server {

/// Configuration of a RecommendServer.
struct ServerOptions {
  /// TCP port to listen on; 0 binds an ephemeral port (read it back with
  /// port() after Start()) — the form every in-process test uses.
  int port = 0;
  int backlog = 64;
  /// Frames whose length field exceeds this are rejected at header decode,
  /// before any allocation.
  uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// Connection slots (one blocking handler thread each). A connection
  /// accepted beyond this is answered with kResourceExhausted and closed —
  /// the same explicit-backpressure contract as the admission queue.
  size_t max_connections = 64;
  BatcherOptions batcher;
};

/// Validates server + nested batcher knobs (Status-returning, same pattern
/// as core::ValidateOptions); errors name the offending field.
[[nodiscard]]
Status ValidateServerOptions(const ServerOptions& options);

/// The online serving front end: a POSIX-socket TCP server speaking the
/// wire.h protocol, fronted by a dynamic micro-batcher that coalesces
/// concurrently arriving queries into Recommender::RecommendBatch calls.
///
/// Lifecycle: construct over a *finalized* Recommender, Start(), serve,
/// then Shutdown() — which drains gracefully: stop accepting, answer every
/// admitted request (flushing in-flight batches), then join. SIGINT/
/// SIGTERM can be wired to the same drain with EnableSignalDrain().
///
/// The recommender must outlive the server and must not be mutated
/// (ApplySocialUpdate/RemoveVideo) while the server runs — the same
/// exclusivity contract as any concurrent Recommend*() caller.
class RecommendServer {
 public:
  RecommendServer(const core::Recommender* recommender,
                  ServerOptions options);
  /// Shuts down (gracefully) if still running.
  ~RecommendServer();

  RecommendServer(const RecommendServer&) = delete;
  RecommendServer& operator=(const RecommendServer&) = delete;

  /// Validates options, binds the listen socket and spawns the accept and
  /// batcher threads. Call once.
  [[nodiscard]]
  Status Start();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting connections and frames, answer every
  /// admitted request, join every thread. Safe to call from any thread
  /// (including the signal watcher); concurrent callers block until the
  /// drain completes. Idempotent.
  void Shutdown();

  /// Installs SIGINT/SIGTERM handlers that trigger Shutdown() through an
  /// async-signal-safe self-pipe. At most one server per process may
  /// enable this at a time; handlers are restored on Shutdown().
  [[nodiscard]]
  Status EnableSignalDrain();

  /// Blocks until Shutdown() (user- or signal-initiated) has completed.
  void WaitUntilStopped();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Snapshot of the serving counters (also served remotely via the
  /// kStatsRequest verb).
  ServerStats stats() const;

 private:
  struct Connection {
    util::UniqueFd fd;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Decodes + admits one query request; blocks until it is answered.
  /// Returns the response frame to write.
  std::vector<uint8_t> HandleQuery(const std::vector<uint8_t>& payload);
  std::vector<uint8_t> HandleQueryById(const std::vector<uint8_t>& payload);
  /// Admits a fully-built query; blocks until answered.
  QueryResponse AdmitAndWait(core::BatchQuery query, int32_t k,
                             uint32_t deadline_ms);
  void FlushBatch(std::vector<BatchJob>&& jobs, FlushReason reason);
  void DoShutdown();
  /// Joins/reaps finished connection threads; with `all` also joins the
  /// live ones (drain path). Returns the number still live.
  size_t ReapConnections(bool all);
  void CountMalformed();

  const core::Recommender* const recommender_;
  const ServerOptions options_;

  util::UniqueFd listen_fd_;
  util::UniqueFd accept_wake_rd_, accept_wake_wr_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> started_{false};

  std::unique_ptr<MicroBatcher> batcher_;
  std::thread accept_thread_;

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  mutable std::mutex stats_mutex_;
  uint64_t accepted_ = 0;
  uint64_t rejected_overload_ = 0;
  uint64_t rejected_malformed_ = 0;
  uint64_t expired_deadline_ = 0;
  uint64_t completed_ = 0;
  core::QueryTiming timing_totals_;

  std::once_flag shutdown_once_;
  std::mutex stopped_mutex_;
  std::condition_variable stopped_cv_;
  bool stopped_ = false;

  // Signal-drain plumbing (EnableSignalDrain).
  util::UniqueFd signal_wake_rd_, signal_wake_wr_;
  std::thread signal_watcher_;
  bool signal_drain_enabled_ = false;
};

}  // namespace vrec::server

#endif  // VREC_SERVER_SERVER_H_
