#ifndef VREC_SERVER_SERVER_H_
#define VREC_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>  // NOLINT(vrec-raw-mutex): std::once_flag/call_once only
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "server/batcher.h"
#include "server/reactor.h"
#include "server/result_cache.h"
#include "server/wire.h"
#include "util/net.h"
#include "util/status.h"
#include "util/sync.h"

namespace vrec::server {

/// Configuration of a RecommendServer.
struct ServerOptions {
  /// TCP port to listen on; 0 binds an ephemeral port (read it back with
  /// port() after Start()) — the form every in-process test uses.
  int port = 0;
  int backlog = 64;
  /// Frames whose length field exceeds this are rejected at header decode,
  /// before any allocation.
  uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// Serviced-connection cap. The epoll reactor costs no thread per
  /// connection, so this is load shedding, not a resource limit: a
  /// connection accepted beyond it is answered with kResourceExhausted and
  /// closed — the same explicit-backpressure contract as the admission
  /// queue. Idle connections below the cap cost one fd + two buffers.
  size_t max_connections = 64;
  /// Entries in the by-id result cache (0 disables it). A hit replays the
  /// exact response frame of the original miss — bit-for-bit — without
  /// touching the batcher, so hits do not count as accepted/completed;
  /// they surface in the cache_* stats counters instead.
  size_t result_cache_capacity = 0;
  BatcherOptions batcher;
};

/// Validates server + nested batcher knobs (Status-returning, same pattern
/// as core::ValidateOptions); errors name the offending field.
[[nodiscard]]
Status ValidateServerOptions(const ServerOptions& options);

/// The online serving front end: a single-threaded epoll reactor speaking
/// the wire.h protocol, an optional LRU result cache for by-id queries,
/// and a dynamic micro-batcher that coalesces concurrently arriving
/// queries into QueryEngine::RecommendBatch calls. Completions flow back
/// to the reactor through its wake pipe, so the only threads are the
/// reactor and the batcher worker — concurrency no longer caps at a
/// thread count.
///
/// The engine can be a single-box core::Recommender or a
/// shard::ShardedRecommender — the pipeline is identical either way, and
/// a server can also front one *shard* of a fleet (the remote backend
/// fetches by-id query material through the kFetchVideoRequest verb).
///
/// Lifecycle: construct over a *finalized* engine, Start(), serve,
/// then Shutdown() — which drains gracefully: stop accepting, answer every
/// admitted request (flushing in-flight batches), then join. SIGINT/
/// SIGTERM can be wired to the same drain with EnableSignalDrain().
///
/// The engine must outlive the server and must not be mutated
/// (ApplySocialUpdate/RemoveVideo) while queries are in flight — the same
/// exclusivity contract as any concurrent Recommend*() caller. A mutation
/// between quiescent periods bumps the engine's generation counter,
/// which invalidates affected cache entries on their next lookup.
class RecommendServer final : private ReactorEvents {
 public:
  RecommendServer(const core::QueryEngine* engine, ServerOptions options);
  /// Shuts down (gracefully) if still running.
  ~RecommendServer() override;

  RecommendServer(const RecommendServer&) = delete;
  RecommendServer& operator=(const RecommendServer&) = delete;

  /// Validates options, binds the listen socket and spawns the reactor and
  /// batcher threads. Call once.
  [[nodiscard]]
  Status Start();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting connections and frames, answer every
  /// admitted request, join every thread. Safe to call from any thread
  /// (including the signal watcher); concurrent callers block until the
  /// drain completes. Idempotent.
  void Shutdown();

  /// Installs SIGINT/SIGTERM handlers that trigger Shutdown() through an
  /// async-signal-safe self-pipe. At most one server per process may
  /// enable this at a time; handlers are restored on Shutdown().
  [[nodiscard]]
  Status EnableSignalDrain();

  /// Blocks until Shutdown() (user- or signal-initiated) has completed.
  void WaitUntilStopped();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Snapshot of the serving counters (also served remotely via the
  /// kStatsRequest verb).
  ServerStats stats() const;

 private:
  /// Where a by-id answer should be cached, captured at lookup-miss time
  /// (one in-flight request per connection makes ConnId a valid key, and
  /// the reactor never reuses ids).
  struct PendingQuery {
    bool cacheable = false;
    int64_t video = -1;
    int32_t k = 0;
    /// Engine generation at the cache miss. The insert re-checks it: if
    /// the corpus mutated while the query was in flight, the result is
    /// not cached (stamping the newer generation would launder a stale
    /// result into a fresh-looking entry). A sharded engine reports an
    /// aggregate generation that moves whenever any shard's results may
    /// change, so the same check stays sound fleet-wide.
    uint64_t generation = 0;
  };

  // ReactorEvents (all on the reactor thread).
  void OnFrame(ConnId conn, const FrameHeader& header,
               std::vector<uint8_t> payload) override;
  void OnMalformed(ConnId conn, const Status& error) override;
  void OnDisconnect(ConnId conn, bool mid_frame) override;
  void OnOverflow(ConnId conn) override;

  /// Encodes a status-only QueryResponse and queues it for `conn`.
  void SendError(ConnId conn, const Status& status);
  /// Validates k, records the pending-query context and submits to the
  /// batcher; answers backpressure/drain rejections inline.
  void AdmitQuery(ConnId conn, core::BatchQuery query, int32_t k,
                  uint32_t deadline_ms, bool cacheable, int64_t video,
                  uint64_t generation);
  std::optional<PendingQuery> TakePending(ConnId conn)
      VREC_EXCLUDES(pending_mutex_);
  void FlushBatch(std::vector<BatchJob>&& jobs, FlushReason reason);
  void DoShutdown();
  void CountMalformed() VREC_EXCLUDES(stats_mutex_);

  const core::QueryEngine* const engine_;
  const ServerOptions options_;

  uint16_t port_ = 0;
  /// acquire/release: running() is documented as "the server is serving",
  /// so a reader that sees true must also see the Start()-built state
  /// (port_, batcher_, reactor_) its caller will touch next.
  std::atomic<bool> running_{false};
  /// exchange() makes Start() once-only; sequencing beyond that is not
  /// needed (the loser returns an error without touching server state).
  std::atomic<bool> started_{false};

  std::unique_ptr<MicroBatcher> batcher_;
  std::unique_ptr<ResultCache> cache_;  // null when capacity is 0
  std::unique_ptr<Reactor> reactor_;

  /// In-flight by-id context, keyed by connection. Written by the reactor
  /// thread at admission, consumed by the batcher worker at completion.
  util::Mutex pending_mutex_;
  std::unordered_map<uint64_t, PendingQuery> pending_
      VREC_GUARDED_BY(pending_mutex_);

  /// One lock for every counter so a stats() snapshot is internally
  /// consistent (accepted == completed + expired + in-flight holds at
  /// every observable instant; see AdmitQuery/FlushBatch for the ordering
  /// that preserves it).
  mutable util::Mutex stats_mutex_;
  uint64_t accepted_ VREC_GUARDED_BY(stats_mutex_) = 0;
  uint64_t rejected_overload_ VREC_GUARDED_BY(stats_mutex_) = 0;
  uint64_t rejected_malformed_ VREC_GUARDED_BY(stats_mutex_) = 0;
  uint64_t expired_deadline_ VREC_GUARDED_BY(stats_mutex_) = 0;
  uint64_t completed_ VREC_GUARDED_BY(stats_mutex_) = 0;
  core::QueryTiming timing_totals_ VREC_GUARDED_BY(stats_mutex_);

  std::once_flag shutdown_once_;
  util::Mutex stopped_mutex_;
  util::CondVar stopped_cv_;
  bool stopped_ VREC_GUARDED_BY(stopped_mutex_) = false;

  // Signal-drain plumbing (EnableSignalDrain).
  util::UniqueFd signal_wake_rd_, signal_wake_wr_;
  std::thread signal_watcher_;
  bool signal_drain_enabled_ = false;
};

}  // namespace vrec::server

#endif  // VREC_SERVER_SERVER_H_
