#include "server/wire.h"

#include <cstring>
#include <sstream>
#include <string>
#include <utility>

#include "io/binary_format.h"

namespace vrec::server {
namespace {

// Little-endian scalar helpers for the fixed-size header. The payload goes
// through io::BinaryWriter/BinaryReader (already little-endian and
// length-capped); the header is decoded by hand because it must be
// validated before any payload allocation happens.
void PutU32(uint8_t* dst, uint32_t v) {
  dst[0] = static_cast<uint8_t>(v);
  dst[1] = static_cast<uint8_t>(v >> 8);
  dst[2] = static_cast<uint8_t>(v >> 16);
  dst[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t GetU32(const uint8_t* src) {
  return static_cast<uint32_t>(src[0]) |
         (static_cast<uint32_t>(src[1]) << 8) |
         (static_cast<uint32_t>(src[2]) << 16) |
         (static_cast<uint32_t>(src[3]) << 24);
}

std::vector<uint8_t> ToBytes(const std::ostringstream& out) {
  const std::string s = out.str();
  return {s.begin(), s.end()};
}

std::string ToString(const std::vector<uint8_t>& bytes) {
  return {bytes.begin(), bytes.end()};
}

constexpr uint8_t kMaxStatusCode =
    static_cast<uint8_t>(Status::Code::kDeadlineExceeded);

void WriteStatus(io::BinaryWriter* w, const Status& status) {
  w->WriteU8(static_cast<uint8_t>(status.code()));
  w->WriteString(status.message());
}

// Out-param rather than StatusOr<Status>: the payload status being decoded
// and the decode outcome are different things (and the StatusOr
// constructors would be ambiguous for T = Status).
Status ReadStatus(io::BinaryReader* r, Status* out) {
  const auto code = r->ReadU8();
  if (!code.ok()) return code.status();
  if (*code > kMaxStatusCode) {
    return Status::InvalidArgument("unknown status code on the wire");
  }
  auto message = r->ReadString();
  if (!message.ok()) return message.status();
  *out = Status(static_cast<Status::Code>(*code), std::move(*message));
  return Status::Ok();
}

// Compile-time tripwire for the codec below: adding a QueryTiming field
// changes the struct size, and whoever does it must extend WriteTiming,
// ReadTiming, the wire_test.cc exhaustive round-trip, and the protocol
// table in docs/serving.md (then update this expected size).
static_assert(sizeof(core::QueryTiming) ==
                  4 * sizeof(double) + 9 * sizeof(size_t),
              "QueryTiming gained or lost a field: update WriteTiming/"
              "ReadTiming, wire_test.cc, and docs/serving.md");

void WriteTiming(io::BinaryWriter* w, const core::QueryTiming& t) {
  w->WriteDouble(t.social_ms);
  w->WriteDouble(t.content_ms);
  w->WriteDouble(t.refine_ms);
  w->WriteDouble(t.total_ms);
  w->WriteU64(t.candidates);
  w->WriteU64(t.emd_calls);
  w->WriteU64(t.pairs_pruned);
  w->WriteU64(t.candidates_pruned);
  w->WriteU64(t.jaccard_calls);
  w->WriteU64(t.social_candidates_skipped);
  w->WriteU64(t.exact_social_pruned);
  w->WriteU64(t.pool_bytes_streamed);
  w->WriteU64(t.bound_batches);
}

StatusOr<core::QueryTiming> ReadTiming(io::BinaryReader* r) {
  core::QueryTiming t;
  const auto social = r->ReadDouble();
  if (!social.ok()) return social.status();
  t.social_ms = *social;
  const auto content = r->ReadDouble();
  if (!content.ok()) return content.status();
  t.content_ms = *content;
  const auto refine = r->ReadDouble();
  if (!refine.ok()) return refine.status();
  t.refine_ms = *refine;
  const auto total = r->ReadDouble();
  if (!total.ok()) return total.status();
  t.total_ms = *total;
  const auto candidates = r->ReadU64();
  if (!candidates.ok()) return candidates.status();
  t.candidates = static_cast<size_t>(*candidates);
  const auto emd = r->ReadU64();
  if (!emd.ok()) return emd.status();
  t.emd_calls = static_cast<size_t>(*emd);
  const auto pairs = r->ReadU64();
  if (!pairs.ok()) return pairs.status();
  t.pairs_pruned = static_cast<size_t>(*pairs);
  const auto cands = r->ReadU64();
  if (!cands.ok()) return cands.status();
  t.candidates_pruned = static_cast<size_t>(*cands);
  const auto jaccard = r->ReadU64();
  if (!jaccard.ok()) return jaccard.status();
  t.jaccard_calls = static_cast<size_t>(*jaccard);
  const auto skipped = r->ReadU64();
  if (!skipped.ok()) return skipped.status();
  t.social_candidates_skipped = static_cast<size_t>(*skipped);
  const auto pruned = r->ReadU64();
  if (!pruned.ok()) return pruned.status();
  t.exact_social_pruned = static_cast<size_t>(*pruned);
  const auto pool_bytes = r->ReadU64();
  if (!pool_bytes.ok()) return pool_bytes.status();
  t.pool_bytes_streamed = static_cast<size_t>(*pool_bytes);
  const auto batches = r->ReadU64();
  if (!batches.ok()) return batches.status();
  t.bound_batches = static_cast<size_t>(*batches);
  return t;
}

void WriteSeries(io::BinaryWriter* w,
                 const signature::SignatureSeries& series) {
  w->WriteU32(static_cast<uint32_t>(series.size()));
  for (const auto& sig : series) {
    w->WriteU32(static_cast<uint32_t>(sig.size()));
    for (const auto& c : sig) {
      w->WriteDouble(c.value);
      w->WriteDouble(c.weight);
    }
  }
}

// io::BinaryReader::ReadI64Vector's only cap is kMaxLength (128M
// elements), which still lets a ~40-byte forged frame drive a ~1 GB
// up-front allocation per connection. Wire decoding budgets the count
// against the payload bytes that could possibly back it instead.
StatusOr<std::vector<int64_t>> ReadI64VectorBudgeted(io::BinaryReader* r,
                                                     size_t budget) {
  const auto count = r->ReadU32();
  if (!count.ok()) return count.status();
  if (*count > budget / sizeof(int64_t)) {
    return Status::InvalidArgument("user count exceeds payload size");
  }
  std::vector<int64_t> v;
  v.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    const auto x = r->ReadI64();
    if (!x.ok()) return x.status();
    v.push_back(*x);
  }
  return v;
}

// `budget` is the payload size: every count is validated against the bytes
// that could possibly back it, so a forged count fails cleanly instead of
// driving a multi-GB reserve.
StatusOr<signature::SignatureSeries> ReadSeries(io::BinaryReader* r,
                                                size_t budget) {
  const auto num_sigs = r->ReadU32();
  if (!num_sigs.ok()) return num_sigs.status();
  if (*num_sigs > budget / sizeof(uint32_t)) {
    return Status::InvalidArgument("series count exceeds payload size");
  }
  signature::SignatureSeries series;
  series.reserve(*num_sigs);
  for (uint32_t s = 0; s < *num_sigs; ++s) {
    const auto num_cuboids = r->ReadU32();
    if (!num_cuboids.ok()) return num_cuboids.status();
    if (*num_cuboids > budget / (2 * sizeof(double))) {
      return Status::InvalidArgument("cuboid count exceeds payload size");
    }
    signature::CuboidSignature sig;
    sig.reserve(*num_cuboids);
    for (uint32_t c = 0; c < *num_cuboids; ++c) {
      const auto value = r->ReadDouble();
      if (!value.ok()) return value.status();
      const auto weight = r->ReadDouble();
      if (!weight.ok()) return weight.status();
      sig.push_back({*value, *weight});
    }
    series.push_back(std::move(sig));
  }
  return series;
}

}  // namespace

uint32_t Fnv1a32(const uint8_t* data, size_t len) {
  // One definition of the checksum for the whole tree: the wire frames,
  // the archives, and the engine snapshots must never drift apart.
  return io::Fnv1a32(data, len);
}

std::vector<uint8_t> EncodeFrame(MessageType type,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame(kHeaderBytes + payload.size());
  PutU32(frame.data(), kWireMagic);
  frame[4] = kWireVersion;
  frame[5] = static_cast<uint8_t>(type);
  frame[6] = 0;
  frame[7] = 0;
  PutU32(frame.data() + 8, static_cast<uint32_t>(payload.size()));
  PutU32(frame.data() + 12, Fnv1a32(payload.data(), payload.size()));
  if (!payload.empty()) {
    std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());
  }
  return frame;
}

StatusOr<FrameHeader> DecodeHeader(const uint8_t* data,
                                   uint32_t max_payload_bytes) {
  if (GetU32(data) != kWireMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (data[4] != kWireVersion) {
    return Status::InvalidArgument("unsupported protocol version");
  }
  const uint8_t type = data[5];
  if (type < static_cast<uint8_t>(MessageType::kQueryRequest) ||
      type > static_cast<uint8_t>(MessageType::kFetchVideoResponse)) {
    return Status::InvalidArgument("unknown message type");
  }
  if (data[6] != 0 || data[7] != 0) {
    return Status::InvalidArgument("nonzero reserved header bytes");
  }
  FrameHeader header;
  header.type = static_cast<MessageType>(type);
  header.payload_len = GetU32(data + 8);
  header.checksum = GetU32(data + 12);
  if (header.payload_len > max_payload_bytes) {
    // A protocol violation, not server overload: kResourceExhausted is
    // reserved for admission-queue backpressure.
    return Status::InvalidArgument("frame payload exceeds the size cap");
  }
  return header;
}

Status VerifyPayload(const FrameHeader& header,
                     const std::vector<uint8_t>& payload) {
  if (payload.size() != header.payload_len) {
    return Status::InvalidArgument("payload length mismatch");
  }
  if (Fnv1a32(payload.data(), payload.size()) != header.checksum) {
    return Status::InvalidArgument("payload checksum mismatch");
  }
  return Status::Ok();
}

std::vector<uint8_t> EncodeQueryRequest(const QueryRequest& request) {
  std::ostringstream out;
  io::BinaryWriter w(&out);
  w.WriteI32(request.k);
  w.WriteI64(request.exclude);
  w.WriteU32(request.deadline_ms);
  w.WriteI64Vector(request.descriptor.users());
  WriteSeries(&w, request.series);
  return ToBytes(out);
}

StatusOr<QueryRequest> DecodeQueryRequest(
    const std::vector<uint8_t>& payload) {
  std::istringstream in(ToString(payload));
  io::BinaryReader r(&in);
  QueryRequest request;
  const auto k = r.ReadI32();
  if (!k.ok()) return k.status();
  request.k = *k;
  const auto exclude = r.ReadI64();
  if (!exclude.ok()) return exclude.status();
  request.exclude = *exclude;
  const auto deadline = r.ReadU32();
  if (!deadline.ok()) return deadline.status();
  request.deadline_ms = *deadline;
  auto users = ReadI64VectorBudgeted(&r, payload.size());
  if (!users.ok()) return users.status();
  request.descriptor = social::SocialDescriptor(std::move(*users));
  auto series = ReadSeries(&r, payload.size());
  if (!series.ok()) return series.status();
  request.series = std::move(*series);
  return request;
}

std::vector<uint8_t> EncodeQueryByIdRequest(const QueryByIdRequest& request) {
  std::ostringstream out;
  io::BinaryWriter w(&out);
  w.WriteI64(request.video);
  w.WriteI32(request.k);
  w.WriteU32(request.deadline_ms);
  return ToBytes(out);
}

StatusOr<QueryByIdRequest> DecodeQueryByIdRequest(
    const std::vector<uint8_t>& payload) {
  std::istringstream in(ToString(payload));
  io::BinaryReader r(&in);
  QueryByIdRequest request;
  const auto video = r.ReadI64();
  if (!video.ok()) return video.status();
  request.video = *video;
  const auto k = r.ReadI32();
  if (!k.ok()) return k.status();
  request.k = *k;
  const auto deadline = r.ReadU32();
  if (!deadline.ok()) return deadline.status();
  request.deadline_ms = *deadline;
  return request;
}

std::vector<uint8_t> EncodeQueryResponse(const QueryResponse& response) {
  std::ostringstream out;
  io::BinaryWriter w(&out);
  WriteStatus(&w, response.status);
  w.WriteU32(static_cast<uint32_t>(response.results.size()));
  for (const auto& r : response.results) {
    w.WriteI64(r.id);
    w.WriteDouble(r.score);
    w.WriteDouble(r.content);
    w.WriteDouble(r.social);
  }
  WriteTiming(&w, response.timing);
  return ToBytes(out);
}

StatusOr<QueryResponse> DecodeQueryResponse(
    const std::vector<uint8_t>& payload) {
  std::istringstream in(ToString(payload));
  io::BinaryReader r(&in);
  QueryResponse response;
  if (const Status s = ReadStatus(&r, &response.status); !s.ok()) return s;
  const auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  if (*count > payload.size() / (sizeof(int64_t) + 3 * sizeof(double))) {
    return Status::InvalidArgument("result count exceeds payload size");
  }
  response.results.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    core::ScoredVideo v;
    const auto id = r.ReadI64();
    if (!id.ok()) return id.status();
    v.id = *id;
    const auto score = r.ReadDouble();
    if (!score.ok()) return score.status();
    v.score = *score;
    const auto content = r.ReadDouble();
    if (!content.ok()) return content.status();
    v.content = *content;
    const auto social = r.ReadDouble();
    if (!social.ok()) return social.status();
    v.social = *social;
    response.results.push_back(v);
  }
  auto timing = ReadTiming(&r);
  if (!timing.ok()) return timing.status();
  response.timing = *timing;
  return response;
}

std::vector<uint8_t> EncodeServerStats(const ServerStats& stats) {
  std::ostringstream out;
  io::BinaryWriter w(&out);
  w.WriteU64(stats.accepted);
  w.WriteU64(stats.rejected_overload);
  w.WriteU64(stats.rejected_malformed);
  w.WriteU64(stats.expired_deadline);
  w.WriteU64(stats.completed);
  w.WriteU64(stats.batches_full);
  w.WriteU64(stats.batches_timer);
  w.WriteU64(stats.cache_hits);
  w.WriteU64(stats.cache_misses);
  w.WriteU64(stats.cache_evictions);
  w.WriteU64(stats.cache_invalidated);
  w.WriteU64(stats.open_connections);
  w.WriteU32(static_cast<uint32_t>(stats.batch_size_histogram.size()));
  for (const uint64_t n : stats.batch_size_histogram) w.WriteU64(n);
  WriteTiming(&w, stats.timing_totals);
  return ToBytes(out);
}

StatusOr<ServerStats> DecodeServerStats(
    const std::vector<uint8_t>& payload) {
  std::istringstream in(ToString(payload));
  io::BinaryReader r(&in);
  ServerStats stats;
  const auto read_u64 = [&r](uint64_t* dst) -> Status {
    const auto v = r.ReadU64();
    if (!v.ok()) return v.status();
    *dst = *v;
    return Status::Ok();
  };
  if (const Status s = read_u64(&stats.accepted); !s.ok()) return s;
  if (const Status s = read_u64(&stats.rejected_overload); !s.ok()) return s;
  if (const Status s = read_u64(&stats.rejected_malformed); !s.ok()) return s;
  if (const Status s = read_u64(&stats.expired_deadline); !s.ok()) return s;
  if (const Status s = read_u64(&stats.completed); !s.ok()) return s;
  if (const Status s = read_u64(&stats.batches_full); !s.ok()) return s;
  if (const Status s = read_u64(&stats.batches_timer); !s.ok()) return s;
  if (const Status s = read_u64(&stats.cache_hits); !s.ok()) return s;
  if (const Status s = read_u64(&stats.cache_misses); !s.ok()) return s;
  if (const Status s = read_u64(&stats.cache_evictions); !s.ok()) return s;
  if (const Status s = read_u64(&stats.cache_invalidated); !s.ok()) return s;
  if (const Status s = read_u64(&stats.open_connections); !s.ok()) return s;
  const auto hist_size = r.ReadU32();
  if (!hist_size.ok()) return hist_size.status();
  if (*hist_size > payload.size() / sizeof(uint64_t)) {
    return Status::InvalidArgument("histogram size exceeds payload size");
  }
  stats.batch_size_histogram.resize(*hist_size);
  for (uint32_t i = 0; i < *hist_size; ++i) {
    if (const Status s = read_u64(&stats.batch_size_histogram[i]); !s.ok()) {
      return s;
    }
  }
  auto timing = ReadTiming(&r);
  if (!timing.ok()) return timing.status();
  stats.timing_totals = *timing;
  return stats;
}

std::vector<uint8_t> EncodeFetchVideoRequest(
    const FetchVideoRequest& request) {
  std::ostringstream out;
  io::BinaryWriter w(&out);
  w.WriteI64(request.video);
  return ToBytes(out);
}

StatusOr<FetchVideoRequest> DecodeFetchVideoRequest(
    const std::vector<uint8_t>& payload) {
  std::istringstream in(ToString(payload));
  io::BinaryReader r(&in);
  FetchVideoRequest request;
  const auto video = r.ReadI64();
  if (!video.ok()) return video.status();
  request.video = *video;
  return request;
}

std::vector<uint8_t> EncodeFetchVideoResponse(
    const FetchVideoResponse& response) {
  std::ostringstream out;
  io::BinaryWriter w(&out);
  WriteStatus(&w, response.status);
  w.WriteI64Vector(response.descriptor.users());
  WriteSeries(&w, response.series);
  return ToBytes(out);
}

StatusOr<FetchVideoResponse> DecodeFetchVideoResponse(
    const std::vector<uint8_t>& payload) {
  std::istringstream in(ToString(payload));
  io::BinaryReader r(&in);
  FetchVideoResponse response;
  if (const Status s = ReadStatus(&r, &response.status); !s.ok()) return s;
  auto users = ReadI64VectorBudgeted(&r, payload.size());
  if (!users.ok()) return users.status();
  response.descriptor = social::SocialDescriptor(std::move(*users));
  auto series = ReadSeries(&r, payload.size());
  if (!series.ok()) return series.status();
  response.series = std::move(*series);
  return response;
}

}  // namespace vrec::server
