#include "server/result_cache.h"

#include <utility>

namespace vrec::server {

std::optional<std::vector<uint8_t>> ResultCache::Lookup(int64_t video, int k,
                                                        uint64_t generation) {
  util::MutexLock lock(mutex_);
  const Key key{video, k};
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  if (it->second->generation != generation) {
    lru_.erase(it->second);
    index_.erase(it);
    ++counters_.invalidated;
    ++counters_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++counters_.hits;
  return it->second->frame;
}

void ResultCache::Insert(int64_t video, int k, uint64_t generation,
                         std::vector<uint8_t> frame) {
  if (capacity_ == 0) return;
  util::MutexLock lock(mutex_);
  const Key key{video, k};
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->generation = generation;
    it->second->frame = std::move(frame);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++counters_.evictions;
  }
  lru_.push_front(Entry{key, generation, std::move(frame)});
  index_[key] = lru_.begin();
}

ResultCache::Counters ResultCache::counters() const {
  util::MutexLock lock(mutex_);
  return counters_;
}

size_t ResultCache::size() const {
  util::MutexLock lock(mutex_);
  return lru_.size();
}

namespace {

void FnvMix(uint64_t* h, uint64_t value) {
  *h ^= value;
  *h *= 1099511628211ULL;  // FNV-1a 64-bit prime
}

void FnvMixDouble(uint64_t* h, double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  FnvMix(h, bits);
}

}  // namespace

uint64_t OptionsFingerprint(const core::RecommenderOptions& options) {
  uint64_t h = 14695981039346656037ULL;  // FNV-1a 64-bit offset basis
  FnvMixDouble(&h, options.omega);
  FnvMix(&h, static_cast<uint64_t>(options.fusion_rule));
  FnvMix(&h, static_cast<uint64_t>(options.k_subcommunities));
  FnvMix(&h, static_cast<uint64_t>(options.social_mode));
  FnvMix(&h, options.use_content ? 1 : 0);
  FnvMix(&h, static_cast<uint64_t>(options.content_measure));
  FnvMix(&h, options.use_lsb_index ? 1 : 0);
  FnvMix(&h, static_cast<uint64_t>(options.lsb_probes));
  FnvMix(&h, static_cast<uint64_t>(options.max_candidates));
  FnvMixDouble(&h, options.kappa.match_threshold);
  return h;
}

}  // namespace vrec::server
