#ifndef VREC_SERVER_WIRE_H_
#define VREC_SERVER_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "signature/cuboid_signature.h"
#include "social/descriptor.h"
#include "util/status.h"
#include "video/video.h"

namespace vrec::server {

/// The serving layer's length-prefixed binary protocol. One frame per
/// message, both directions:
///
///   offset  size  field
///        0     4  magic        0x31535256 ("VRS1" on the wire, LE)
///        4     1  version      kWireVersion
///        5     1  type         MessageType
///        6     2  reserved     must be 0
///        8     4  payload_len  <= the server's max_payload_bytes cap
///       12     4  checksum     FNV-1a-32 over the payload bytes
///       16     N  payload      message-specific (see Encode*/Decode*)
///
/// All integers little-endian; doubles as their raw 8-byte IEEE-754 image
/// (so scores round-trip bit for bit — the loopback equivalence tests
/// depend on it). Everything here is pure buffer transformation: no
/// sockets, no I/O, unit-testable in isolation (tests/wire_test.cc), and
/// every malformed input path returns a Status instead of crashing.

inline constexpr uint32_t kWireMagic = 0x31535256;  // bytes 'V','R','S','1'
/// v2: QueryTiming grew the three social fast-path counters and
/// ServerStats grew the result-cache counters + open_connections.
/// v3: QueryTiming grew the data-layout counters pool_bytes_streamed and
/// bound_batches.
/// v4: the shard-to-shard verbs kFetchVideoRequest/kFetchVideoResponse
/// (resolve an ingested video into its series + descriptor, so a remote
/// router can serve by-id queries). Version mismatches are rejected at
/// header decode (no cross-version reads).
inline constexpr uint8_t kWireVersion = 4;
inline constexpr size_t kHeaderBytes = 16;
/// Default payload cap; oversized length fields are rejected at header
/// decode, before any allocation.
inline constexpr uint32_t kDefaultMaxPayloadBytes = 16u << 20;

enum class MessageType : uint8_t {
  kQueryRequest = 1,     // full series + descriptor (anonymous-user query)
  kQueryByIdRequest = 2, // query an already-ingested video by id
  kStatsRequest = 3,     // server counters (the STATS verb)
  kQueryResponse = 4,
  kStatsResponse = 5,
  kFetchVideoRequest = 6,  // resolve an id into series + descriptor (v4)
  kFetchVideoResponse = 7,
};

struct FrameHeader {
  MessageType type = MessageType::kQueryRequest;
  uint32_t payload_len = 0;
  uint32_t checksum = 0;
};

/// FNV-1a 32-bit; cheap, dependency-free, and plenty to catch truncation
/// and bit rot on a frame-sized payload (this is integrity, not security).
uint32_t Fnv1a32(const uint8_t* data, size_t len);

/// One frame: header (with computed checksum) followed by the payload.
std::vector<uint8_t> EncodeFrame(MessageType type,
                                 const std::vector<uint8_t>& payload);

/// Validates magic, version, reserved bytes and the payload cap. `data`
/// must hold kHeaderBytes bytes.
[[nodiscard]]
StatusOr<FrameHeader> DecodeHeader(const uint8_t* data,
                                   uint32_t max_payload_bytes);

/// Checks the payload against the header's length and checksum.
[[nodiscard]]
Status VerifyPayload(const FrameHeader& header,
                     const std::vector<uint8_t>& payload);

// --- Messages ---------------------------------------------------------------

/// An anonymous-user query: the clicked clip's signature series plus the
/// social context (possibly empty). `deadline_ms` 0 means no deadline;
/// otherwise the server answers kDeadlineExceeded if the request is still
/// queued when the deadline (measured from admission) expires.
struct QueryRequest {
  signature::SignatureSeries series;
  social::SocialDescriptor descriptor;
  video::VideoId exclude = -1;
  int32_t k = 10;
  uint32_t deadline_ms = 0;
};

struct QueryByIdRequest {
  video::VideoId video = 0;
  int32_t k = 10;
  uint32_t deadline_ms = 0;
};

/// Per-query outcome. `status` carries application errors end to end
/// (kResourceExhausted on overload, kDeadlineExceeded on expiry, kNotFound
/// for unknown ids, ...); `results`/`timing` are meaningful only when ok.
struct QueryResponse {
  Status status;
  std::vector<core::ScoredVideo> results;
  core::QueryTiming timing;
};

/// Snapshot of the server-side counters (the STATS verb).
struct ServerStats {
  uint64_t accepted = 0;           // requests admitted to the batch queue
  uint64_t rejected_overload = 0;  // kResourceExhausted answers
  uint64_t rejected_malformed = 0; // bad frames (connection then closed)
  uint64_t expired_deadline = 0;   // kDeadlineExceeded answers
  uint64_t completed = 0;          // answered through RecommendBatch
  uint64_t batches_full = 0;       // flushes triggered by max_batch
  uint64_t batches_timer = 0;      // flushes triggered by max_delay_us
  /// Result-cache counters (the by-id front end; all 0 with the cache
  /// disabled). Hits are answered without touching the batcher, so they
  /// are NOT part of accepted/completed.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;       // includes invalidated lookups
  uint64_t cache_evictions = 0;    // LRU capacity-pressure removals
  uint64_t cache_invalidated = 0;  // generation-mismatch removals
  /// Live connection gauge at snapshot time (reactor front end).
  uint64_t open_connections = 0;
  /// histogram[i] = number of flushed batches of size i+1.
  std::vector<uint64_t> batch_size_histogram;
  /// Element-wise sums of the per-query QueryTiming of completed requests.
  core::QueryTiming timing_totals;
};

std::vector<uint8_t> EncodeQueryRequest(const QueryRequest& request);
[[nodiscard]]
StatusOr<QueryRequest> DecodeQueryRequest(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeQueryByIdRequest(const QueryByIdRequest& request);
[[nodiscard]]
StatusOr<QueryByIdRequest> DecodeQueryByIdRequest(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeQueryResponse(const QueryResponse& response);
[[nodiscard]]
StatusOr<QueryResponse> DecodeQueryResponse(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeServerStats(const ServerStats& stats);
[[nodiscard]]
StatusOr<ServerStats> DecodeServerStats(const std::vector<uint8_t>& payload);

/// Shard-to-shard (v4): resolve an ingested video into the raw material a
/// remote router needs to scatter it as an anonymous query — its signature
/// series and social descriptor. The response carries application errors
/// (kNotFound for unknown/removed ids) in `status`; series/descriptor are
/// meaningful only when ok. Scores never cross this verb, so the merge
/// arithmetic stays wherever the query runs.
struct FetchVideoRequest {
  video::VideoId video = 0;
};

struct FetchVideoResponse {
  Status status;
  signature::SignatureSeries series;
  social::SocialDescriptor descriptor;
};

std::vector<uint8_t> EncodeFetchVideoRequest(const FetchVideoRequest& request);
[[nodiscard]]
StatusOr<FetchVideoRequest> DecodeFetchVideoRequest(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeFetchVideoResponse(
    const FetchVideoResponse& response);
[[nodiscard]]
StatusOr<FetchVideoResponse> DecodeFetchVideoResponse(
    const std::vector<uint8_t>& payload);

}  // namespace vrec::server

#endif  // VREC_SERVER_WIRE_H_
