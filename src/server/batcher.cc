#include "server/batcher.h"

#include <utility>

#include "util/check.h"

namespace vrec::server {

Status ValidateBatcherOptions(const BatcherOptions& options) {
  if (options.max_batch < 1) {
    return Status::InvalidArgument("batcher.max_batch must be >= 1");
  }
  if (options.max_delay_us < 0) {
    return Status::InvalidArgument("batcher.max_delay_us must be >= 0");
  }
  if (options.queue_capacity < options.max_batch) {
    return Status::InvalidArgument(
        "batcher.queue_capacity must be >= max_batch (a full batch must "
        "fit in the admission queue)");
  }
  return Status::Ok();
}

void PendingResponse::Complete(core::BatchResult result) {
  {
    util::MutexLock lock(mutex_);
    VREC_CHECK(!done_);
    result_ = std::move(result);
    done_ = true;
  }
  done_cv_.NotifyAll();
}

core::BatchResult PendingResponse::Take() {
  util::MutexLock lock(mutex_);
  while (!done_) done_cv_.Wait(mutex_);
  return std::move(result_);
}

MicroBatcher::MicroBatcher(const BatcherOptions& options, FlushFn flush)
    : options_(options),
      flush_(std::move(flush)),
      histogram_(options.max_batch, 0) {
  VREC_CHECK_OK(ValidateBatcherOptions(options_));
  worker_ = std::thread([this] { WorkerLoop(); });
}

MicroBatcher::~MicroBatcher() { Drain(); }

Status MicroBatcher::Submit(BatchJob job) {
  {
    util::MutexLock lock(mutex_);
    if (draining_) {
      return Status::FailedPrecondition("server is draining");
    }
    if (queue_.size() >= options_.queue_capacity) {
      return Status::ResourceExhausted("admission queue full");
    }
    job.enqueued_at = std::chrono::steady_clock::now();
    queue_.push_back(std::move(job));
  }
  work_cv_.NotifyOne();
  return Status::Ok();
}

void MicroBatcher::Drain() {
  {
    util::MutexLock lock(mutex_);
    draining_ = true;
  }
  work_cv_.NotifyAll();
  // Idempotent: a second caller finds the thread already joined.
  if (worker_.joinable()) worker_.join();
}

uint64_t MicroBatcher::batches_full() const {
  util::MutexLock lock(mutex_);
  return batches_full_count_;
}

uint64_t MicroBatcher::batches_timer() const {
  util::MutexLock lock(mutex_);
  return batches_timer_count_;
}

std::vector<uint64_t> MicroBatcher::batch_size_histogram() const {
  util::MutexLock lock(mutex_);
  return histogram_;
}

std::vector<BatchJob> MicroBatcher::FormBatchLocked(size_t take,
                                                    FlushReason reason) {
  if (reason == FlushReason::kFull) {
    ++batches_full_count_;
  } else if (reason == FlushReason::kTimer) {
    ++batches_timer_count_;
  }
  ++histogram_[take - 1];
  std::vector<BatchJob> batch;
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;
}

void MicroBatcher::WorkerLoop() {
  // The lock is held for the whole loop except the flush callback window;
  // explicit Lock/Unlock (rather than a scope) because the analysis
  // verifies balance across the unlock-flush-relock seam, which a scoped
  // lock cannot straddle.
  mutex_.Lock();
  for (;;) {
    while (queue_.empty() && !draining_) work_cv_.Wait(mutex_);
    if (queue_.empty()) {  // draining and nothing left
      mutex_.Unlock();
      return;
    }

    // A batch starts forming when its oldest request is queued, so the
    // delay deadline is anchored to that job's enqueue stamp — not to
    // this wakeup. The difference matters under a slow flush: jobs that
    // queued while the worker was busy have already burned part of their
    // delay budget, and restarting the clock here would let them wait up
    // to 2x max_delay_us.
    const auto flush_at = queue_.front().enqueued_at +
                          std::chrono::microseconds(options_.max_delay_us);
    while (queue_.size() < options_.max_batch && !draining_) {
      if (work_cv_.WaitUntil(mutex_, flush_at) == std::cv_status::timeout) {
        break;
      }
    }

    const size_t take = std::min(queue_.size(), options_.max_batch);
    FlushReason reason = FlushReason::kTimer;
    if (take == options_.max_batch) {
      reason = FlushReason::kFull;
    } else if (draining_) {
      reason = FlushReason::kDrain;
    }
    std::vector<BatchJob> batch = FormBatchLocked(take, reason);

    mutex_.Unlock();
    flush_(std::move(batch), reason);
    mutex_.Lock();
  }
}

}  // namespace vrec::server
