#include "server/reactor.h"

#include <utility>

#include "util/check.h"

namespace vrec::server {
namespace {

// Reserved epoll tags; client connections start at ConnId 2.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;

constexpr size_t kMaxEpollEvents = 64;
constexpr size_t kReadChunkBytes = 16 * 1024;

}  // namespace

Reactor::Reactor(util::UniqueFd listen_fd, const ReactorOptions& options,
                 ReactorEvents* events)
    : listen_fd_(std::move(listen_fd)), options_(options), events_(events) {}

Reactor::~Reactor() {
  // Emergency teardown for callers that never drained; the server's
  // Shutdown() runs the full protocol itself, leaving nothing to do here.
  if (started_ && !joined_) {
    BeginDrain();
    FinishDrain();
    Join();
  }
}

Status Reactor::Start() {
  VREC_CHECK(!started_);
  auto epoll = util::EpollCreate();
  if (!epoll.ok()) return epoll.status();
  epoll_fd_ = std::move(*epoll);

  auto wake = util::MakeWakePipe();
  if (!wake.ok()) return wake.status();
  wake_rd_ = std::move(wake->first);
  wake_wr_ = std::move(wake->second);

  if (const Status s = util::SetNonBlocking(listen_fd_.get()); !s.ok()) {
    return s;
  }
  if (const Status s = util::EpollAdd(epoll_fd_.get(), listen_fd_.get(),
                                      util::kEpollIn, kListenerTag);
      !s.ok()) {
    return s;
  }
  if (const Status s = util::EpollAdd(epoll_fd_.get(), wake_rd_.get(),
                                      util::kEpollIn, kWakeTag);
      !s.ok()) {
    return s;
  }
  listener_open_ = true;
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void Reactor::Loop() {
  loop_tid_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  util::EpollEvent events[kMaxEpollEvents];
  for (;;) {
    RunCommands();
    if (finish_requested_ && connections_.empty()) return;

    const auto n =
        util::EpollWait(epoll_fd_.get(), events, kMaxEpollEvents, -1);
    if (!n.ok()) return;  // epoll itself broke; nothing left to serve

    for (size_t i = 0; i < *n; ++i) {
      const uint64_t tag = events[i].tag;
      const uint32_t mask = events[i].events;
      if (tag == kWakeTag) {
        util::DrainWake(wake_rd_.get());
        continue;  // commands run at the top of the loop
      }
      if (tag == kListenerTag) {
        if (listener_open_ && (mask & util::kEpollIn) != 0) HandleAccept();
        continue;
      }
      const ConnId id = tag;
      if ((mask & util::kEpollIn) != 0) {
        HandleReadable(id);  // EOF/errors surface through the read path
      }
      if (connections_.find(id) == connections_.end()) continue;
      if ((mask & util::kEpollOut) != 0) {
        if (!TryFlush(id)) continue;  // destroyed (error or final flush)
        UpdateInterest(id);
      }
      if (connections_.find(id) == connections_.end()) continue;
      if ((mask & (util::kEpollErr | util::kEpollHup)) != 0 &&
          (mask & util::kEpollIn) == 0) {
        // Hard error with nothing readable: the peer is gone.
        const Connection& conn = connections_.at(id);
        if (!conn.closing && !conn.awaiting_response) {
          events_->OnDisconnect(id, /*mid_frame=*/false);
        }
        Destroy(id);
      }
    }
  }
}

void Reactor::RunCommands() {
  for (;;) {
    Command command;
    {
      util::MutexLock lock(commands_mutex_);
      if (commands_.empty()) return;
      command = std::move(commands_.front());
      commands_.pop_front();
    }
    switch (command.kind) {
      case Command::Kind::kSend:
        SendResponseOnLoop(command.conn, std::move(command.frame));
        break;
      case Command::Kind::kBeginDrain:
        BeginDrainOnLoop();
        break;
      case Command::Kind::kFinishDrain:
        FinishDrainOnLoop();
        break;
    }
    if (command.signal != nullptr) {
      util::MutexLock lock(command.signal->mutex);
      command.signal->done = true;
      command.signal->cv.NotifyAll();
    }
  }
}

void Reactor::EnqueueCommand(Command command, bool blocking) {
  std::shared_ptr<CommandDone> signal;
  if (blocking) {
    signal = std::make_shared<CommandDone>();
    command.signal = signal;
  }
  {
    util::MutexLock lock(commands_mutex_);
    commands_.push_back(std::move(command));
  }
  util::SignalWake(wake_wr_.get());
  if (blocking) {
    util::MutexLock lock(signal->mutex);
    while (!signal->done) signal->cv.Wait(signal->mutex);
  }
}

void Reactor::HandleAccept() {
  for (;;) {
    auto accepted = util::AcceptNonBlocking(listen_fd_.get());
    if (!accepted.ok()) return;   // transient listener trouble; retry later
    if (!accepted->valid()) return;  // EAGAIN: queue empty

    const ConnId id = next_conn_id_++;
    Connection conn;
    conn.fd = std::move(*accepted);
    const int fd = conn.fd.get();
    const bool overflow = connections_.size() >= options_.max_connections;
    if (const Status s = util::EpollAdd(epoll_fd_.get(), fd,
                                        overflow ? 0 : util::kEpollIn, id);
        !s.ok()) {
      continue;  // conn.fd closes; the peer sees a reset
    }
    conn.interest = overflow ? 0 : util::kEpollIn;
    connections_.emplace(id, std::move(conn));
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    if (overflow) {
      // Load shedding: the handler answers once, then we flush and close.
      events_->OnOverflow(id);
      if (auto it = connections_.find(id); it != connections_.end()) {
        it->second.closing = true;
        if (TryFlush(id)) UpdateInterest(id);
      }
    }
  }
}

void Reactor::HandleReadable(ConnId id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  uint8_t chunk[kReadChunkBytes];
  for (;;) {
    const auto got = util::ReadNonBlocking(conn.fd.get(), chunk,
                                           sizeof(chunk));
    if (!got.ok()) {
      // Peer reset mid-stream; the old server broke out without counting.
      if (!conn.closing && !conn.awaiting_response) {
        events_->OnDisconnect(id, /*mid_frame=*/false);
      }
      Destroy(id);
      return;
    }
    if (got->eof) {
      conn.read_eof = true;
      break;
    }
    if (got->would_block) break;
    conn.read_buf.insert(conn.read_buf.end(), chunk, chunk + got->bytes);
  }
  ProcessBuffer(id);
  MaybeFinishEof(id);
  if (connections_.find(id) != connections_.end()) UpdateInterest(id);
}

void Reactor::ProcessBuffer(ConnId id) {
  for (;;) {
    auto it = connections_.find(id);
    if (it == connections_.end()) return;
    Connection& conn = it->second;
    if (conn.awaiting_response || conn.closing || draining_) return;

    const size_t available = conn.read_buf.size() - conn.read_off;
    if (available < kHeaderBytes) break;
    const uint8_t* base = conn.read_buf.data() + conn.read_off;
    const auto header = DecodeHeader(base, options_.max_payload_bytes);
    if (!header.ok()) {
      // Framing is broken: the handler answers once and closes; either
      // way nothing further is parsed from this byte stream. `closing` is
      // set BEFORE the callback — the handler's error answer re-enters
      // ProcessBuffer through SendResponse, and without the flag that
      // re-entry would parse the same bad bytes again, recursing forever.
      conn.closing = true;
      events_->OnMalformed(id, header.status());
      return;
    }
    if (available < kHeaderBytes + header->payload_len) break;

    std::vector<uint8_t> payload(base + kHeaderBytes,
                                 base + kHeaderBytes + header->payload_len);
    conn.read_off += kHeaderBytes + header->payload_len;
    if (conn.read_off == conn.read_buf.size()) {
      conn.read_buf.clear();
      conn.read_off = 0;
    }
    conn.awaiting_response = true;
    conn.in_parse = true;
    events_->OnFrame(id, *header, std::move(payload));
    if (auto again = connections_.find(id); again != connections_.end()) {
      again->second.in_parse = false;
    }
  }
}

void Reactor::MaybeFinishEof(ConnId id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  if (!conn.read_eof || conn.awaiting_response) return;
  if (conn.closing) {
    // Already on the way out; Destroy once the write buffer drains.
    if (conn.write_off >= conn.write_buf.size()) Destroy(id);
    return;
  }
  // Parsing can make no more progress: whatever trails is either the
  // normal between-frames hangup (< header) or a truncated frame.
  const size_t leftover = conn.read_buf.size() - conn.read_off;
  events_->OnDisconnect(id, /*mid_frame=*/leftover >= kHeaderBytes);
  Destroy(id);
}

void Reactor::SendResponse(ConnId conn, std::vector<uint8_t> frame) {
  // A stale read routes through the command queue, which is always
  // correct; inline dispatch is just the fast path for the loop thread
  // answering its own handler (it always sees its own store).
  if (std::this_thread::get_id() ==
      loop_tid_.load(std::memory_order_relaxed)) {
    SendResponseOnLoop(conn, std::move(frame));
    return;
  }
  Command command;
  command.kind = Command::Kind::kSend;
  command.conn = conn;
  command.frame = std::move(frame);
  EnqueueCommand(std::move(command), /*blocking=*/false);
}

void Reactor::SendResponseOnLoop(ConnId id, std::vector<uint8_t> frame) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;  // client gone; drop (best effort)
  Connection& conn = it->second;
  conn.write_buf.insert(conn.write_buf.end(), frame.begin(), frame.end());
  conn.awaiting_response = false;
  const bool was_in_parse = conn.in_parse;
  if (!TryFlush(id)) return;  // destroyed
  UpdateInterest(id);
  if (!was_in_parse) {
    // A completion from the batcher: resume parsing pipelined requests
    // (when called from inside OnFrame the outer parse loop does this).
    ProcessBuffer(id);
    MaybeFinishEof(id);
    if (connections_.find(id) != connections_.end()) UpdateInterest(id);
  }
}

void Reactor::CloseAfterFlush(ConnId id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  it->second.closing = true;
  if (!TryFlush(id)) return;  // destroyed: everything already flushed
  UpdateInterest(id);
}

bool Reactor::TryFlush(ConnId id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return false;
  Connection& conn = it->second;
  while (conn.write_off < conn.write_buf.size()) {
    const auto wrote = util::WriteNonBlocking(
        conn.fd.get(), conn.write_buf.data() + conn.write_off,
        conn.write_buf.size() - conn.write_off);
    if (!wrote.ok()) {
      // Peer hung up before reading its answer; the old server broke out
      // of its connection loop the same way.
      Destroy(id);
      return false;
    }
    if (wrote->would_block) break;
    conn.write_off += wrote->bytes;
  }
  if (conn.write_off >= conn.write_buf.size()) {
    conn.write_buf.clear();
    conn.write_off = 0;
    if (conn.closing) {
      Destroy(id);
      return false;
    }
  }
  return true;
}

void Reactor::UpdateInterest(ConnId id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  uint32_t want = 0;
  if (!conn.awaiting_response && !conn.closing && !conn.read_eof &&
      !draining_) {
    want |= util::kEpollIn;
  }
  if (conn.write_off < conn.write_buf.size()) want |= util::kEpollOut;
  if (want == conn.interest) return;
  if (util::EpollMod(epoll_fd_.get(), conn.fd.get(), want, id).ok()) {
    conn.interest = want;
  }
}

void Reactor::Destroy(ConnId id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  // Deregister before close so a pending event for this fd cannot alias a
  // future connection reusing the descriptor (ids are never reused, but
  // kernel fds are).
  static_cast<void>(util::EpollDel(epoll_fd_.get(), it->second.fd.get()));
  util::ShutdownBoth(it->second.fd.get());
  connections_.erase(it);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
}

void Reactor::BeginDrain() {
  if (!started_) return;
  Command command;
  command.kind = Command::Kind::kBeginDrain;
  EnqueueCommand(std::move(command), /*blocking=*/true);
}

void Reactor::FinishDrain() {
  if (!started_) return;
  Command command;
  command.kind = Command::Kind::kFinishDrain;
  EnqueueCommand(std::move(command), /*blocking=*/true);
}

void Reactor::BeginDrainOnLoop() {
  if (draining_) return;
  draining_ = true;
  if (listener_open_) {
    static_cast<void>(util::EpollDel(epoll_fd_.get(), listen_fd_.get()));
    listen_fd_.Reset();
    listener_open_ = false;
  }
  // Half-close every connection's read side (the peer sees EOF for its
  // next request) and drop the ones with nothing left to say. Buffered
  // requests that were never parsed are dropped, exactly like the old
  // server's ShutdownRead during drain.
  std::vector<ConnId> idle;
  for (auto& [id, conn] : connections_) {
    util::ShutdownRead(conn.fd.get());
    conn.closing = true;
    if (!conn.awaiting_response && conn.write_off >= conn.write_buf.size()) {
      idle.push_back(id);
    }
  }
  for (const ConnId id : idle) Destroy(id);
  std::vector<ConnId> remaining;
  remaining.reserve(connections_.size());
  for (const auto& entry : connections_) remaining.push_back(entry.first);
  for (const ConnId id : remaining) UpdateInterest(id);
}

void Reactor::FinishDrainOnLoop() {
  finish_requested_ = true;
  // Every admitted request has been answered by now (the batcher drained
  // before this command was enqueued), so anything still here is flushing
  // its final bytes; the loop exits when the last one drains.
  std::vector<ConnId> flushed;
  for (auto& [id, conn] : connections_) {
    if (conn.write_off >= conn.write_buf.size()) flushed.push_back(id);
  }
  for (const ConnId id : flushed) Destroy(id);
}

void Reactor::Join() {
  if (thread_.joinable()) thread_.join();
  joined_ = true;
}

}  // namespace vrec::server
