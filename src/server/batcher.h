#ifndef VREC_SERVER_BATCHER_H_
#define VREC_SERVER_BATCHER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/recommender.h"
#include "util/status.h"
#include "util/sync.h"

namespace vrec::server {

/// Knobs of the dynamic micro-batcher. A forming batch is flushed as soon
/// as `max_batch` requests are queued *or* `max_delay_us` has elapsed
/// since the oldest queued request arrived, whichever comes first — the
/// classic latency/throughput trade of inference serving. The admission
/// queue is bounded: a request arriving while `queue_capacity` requests
/// are already waiting is rejected with kResourceExhausted instead of
/// growing memory without limit.
struct BatcherOptions {
  size_t max_batch = 16;
  int64_t max_delay_us = 1000;
  size_t queue_capacity = 256;
};

/// Validates batcher knobs (Status-returning, same pattern as
/// core::ValidateOptions); errors name the offending field.
[[nodiscard]]
Status ValidateBatcherOptions(const BatcherOptions& options);

/// Completion slot shared between the connection thread that owns the
/// request and the batcher thread that answers it.
class PendingResponse {
 public:
  void Complete(core::BatchResult result);
  /// Blocks until Complete() was called; returns the result.
  core::BatchResult Take();

 private:
  util::Mutex mutex_;
  util::CondVar done_cv_;
  bool done_ VREC_GUARDED_BY(mutex_) = false;
  core::BatchResult result_ VREC_GUARDED_BY(mutex_);
};

/// One admitted request: the query, its per-request deadline (admission
/// time + deadline_ms; time_point::max() when none) and where the answer
/// goes — either a blocking completion slot (`response`) or an opaque
/// completion tag the flush callback routes by (the reactor's ConnId).
struct BatchJob {
  core::BatchQuery query;
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  std::shared_ptr<PendingResponse> response;
  /// Caller-owned routing key, carried through untouched.
  uint64_t tag = 0;
  /// Stamped by Submit(): when the job entered the admission queue. The
  /// worker deadlines its wait off the *oldest* queued job's stamp, per
  /// the BatcherOptions contract.
  std::chrono::steady_clock::time_point enqueued_at{};
};

/// Why a batch was flushed (surfaced in the server stats).
enum class FlushReason { kFull, kTimer, kDrain };

/// The dynamic micro-batcher: a bounded MPSC queue drained by one worker
/// thread that coalesces concurrently arriving requests into batches for
/// the flush callback (the server points it at RecommendBatch). Decoupled
/// from sockets so the coalescing logic is unit-testable
/// (tests/batcher_test.cc).
class MicroBatcher {
 public:
  using FlushFn =
      std::function<void(std::vector<BatchJob>&&, FlushReason)>;

  /// `options` must already be validated. The worker thread starts
  /// immediately.
  MicroBatcher(const BatcherOptions& options, FlushFn flush);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Admits one request. Returns kResourceExhausted when the queue is at
  /// capacity (the caller answers the client immediately — backpressure,
  /// not buffering) and kFailedPrecondition after Drain() began.
  [[nodiscard]]
  Status Submit(BatchJob job);

  /// Stops admitting, flushes everything still queued (in max_batch
  /// chunks, no timer waits) and joins the worker. Idempotent.
  void Drain();

  size_t max_batch() const { return options_.max_batch; }

  // Counters (monotonic, safe to read concurrently with serving).
  uint64_t batches_full() const;
  uint64_t batches_timer() const;
  /// histogram[i] = flushed batches of size i+1 (length max_batch).
  std::vector<uint64_t> batch_size_histogram() const;

 private:
  void WorkerLoop();
  /// Pops the first `take` queued jobs and updates the flush counters and
  /// histogram. The MPSC handoff point: everything it touches is guarded.
  [[nodiscard]]
  std::vector<BatchJob> FormBatchLocked(size_t take, FlushReason reason)
      VREC_REQUIRES(mutex_);

  const BatcherOptions options_;
  const FlushFn flush_;

  mutable util::Mutex mutex_;
  util::CondVar work_cv_;
  std::deque<BatchJob> queue_ VREC_GUARDED_BY(mutex_);
  bool draining_ VREC_GUARDED_BY(mutex_) = false;
  uint64_t batches_full_count_ VREC_GUARDED_BY(mutex_) = 0;
  uint64_t batches_timer_count_ VREC_GUARDED_BY(mutex_) = 0;
  std::vector<uint64_t> histogram_ VREC_GUARDED_BY(mutex_);

  std::thread worker_;
};

}  // namespace vrec::server

#endif  // VREC_SERVER_BATCHER_H_
