#include "hashing/shift_add_xor.h"

namespace vrec::hashing {

uint64_t ShiftAddXorHash(std::string_view s, const ShiftAddXorParams& params) {
  uint64_t h = params.seed;
  for (unsigned char c : s) {
    h ^= (h << params.left_shift) + (h >> params.right_shift) +
         static_cast<uint64_t>(c);
  }
  return h;
}

uint64_t ShiftAddXorBucket(std::string_view s, uint64_t table_size,
                           const ShiftAddXorParams& params) {
  return ShiftAddXorHash(s, params) % table_size;
}

}  // namespace vrec::hashing
