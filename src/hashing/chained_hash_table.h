#ifndef VREC_HASHING_CHAINED_HASH_TABLE_H_
#define VREC_HASHING_CHAINED_HASH_TABLE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hashing/shift_add_xor.h"
#include "util/status.h"

namespace vrec::hashing {

/// The paper's chained hash table (Figure 4): buckets of `<key, cno,
/// nextptr>` triads, keyed by the shift-add-xor hash of the social user
/// name, with `cno` the user's sub-community id. New triads are inserted at
/// the head of their bucket, exactly as described.
///
/// The value type is fixed to int32 (`cno`) because that is the single use
/// the paper has for the structure; collision statistics are exposed so the
/// vectorization cost model (n * eta * beta, Section 4.2.3) can be measured.
class ChainedHashTable {
 public:
  struct Triad {
    std::string key;  // social user name
    int32_t cno;      // sub-community id
    int32_t next;     // index of the next triad in this bucket, -1 for end
  };

  explicit ChainedHashTable(size_t bucket_count = 1024,
                            ShiftAddXorParams params = {});

  /// Inserts at the bucket head, or overwrites cno if the key exists.
  void InsertOrAssign(std::string_view key, int32_t cno);

  /// Sub-community id of `key`, or nullopt if absent. Updates lookup
  /// statistics (string comparisons performed).
  std::optional<int32_t> Find(std::string_view key) const;

  /// Find without touching the comparison counter — for invariant checks
  /// and diagnostics that must not distort the measured SAR-H cost model.
  std::optional<int32_t> FindWithoutStats(std::string_view key) const;

  /// Removes `key`; returns true if it was present.
  bool Erase(std::string_view key);

  /// Rewrites every triad whose cno is `from` to `to` (sub-community merge /
  /// renumbering during social-update maintenance). Returns #changed.
  size_t ReplaceCno(int32_t from, int32_t to);

  size_t size() const { return size_; }
  size_t bucket_count() const { return buckets_.size(); }

  /// Average chain length over non-empty buckets — the eta of the paper's
  /// vectorization cost model.
  double AverageChainLength() const;

  /// Total key comparisons performed by Find() since construction. The
  /// counter is atomic (relaxed) so concurrent const lookups — the hot
  /// vectorization path under batch serving — stay race-free.
  uint64_t comparisons() const {
    return comparisons_.load(std::memory_order_relaxed);
  }
  void ResetStats() { comparisons_.store(0, std::memory_order_relaxed); }

  /// Full structural audit: every triad is reachable from exactly one bucket
  /// chain (no cycles, no shared tails), chains hold only keys hashing to
  /// their bucket, keys are globally unique, reachable-triad count matches
  /// size(), and reachable + free-listed slots account for the whole arena.
  /// O(n); meant for VREC_DCHECK_OK and the invariant stress tests.
  [[nodiscard]]
  Status CheckInvariants() const;

 private:
  size_t BucketOf(std::string_view key) const {
    return static_cast<size_t>(
        ShiftAddXorBucket(key, buckets_.size(), params_));
  }

  ShiftAddXorParams params_;
  std::vector<int32_t> buckets_;  // head triad index per bucket, -1 empty
  std::vector<Triad> triads_;     // arena; erased slots are reused
  std::vector<int32_t> free_list_;
  size_t size_ = 0;
  /// Ordering audit: genuinely lock-free, not "a mutex-guarded member in
  /// disguise" — Find() is const and runs concurrently from every pool
  /// worker during batch vectorization with no lock in sight, so the
  /// counter must be atomic. relaxed is correct because it is a pure
  /// tally: no reader infers any other state from its value, and the
  /// only sequenced use (SAR-H comparison counts in the figures) reads it
  /// after the batch joined, which ThreadPool::Wait's mutex already
  /// orders.
  mutable std::atomic<uint64_t> comparisons_{0};
};

}  // namespace vrec::hashing

#endif  // VREC_HASHING_CHAINED_HASH_TABLE_H_
