#ifndef VREC_HASHING_SHIFT_ADD_XOR_H_
#define VREC_HASHING_SHIFT_ADD_XOR_H_

#include <cstdint>
#include <string_view>

namespace vrec::hashing {

/// The shift-add-xor class of string hash functions (Ramakrishna & Zobel,
/// DASFAA'97), as given in the paper's Equation 7:
///
///   init(v)        = v
///   step(i, h, c)  = h XOR (L_l(h) + R_r(h) + c)
///   final(h, T)    = h mod T
///
/// where L_l / R_r are left/right shifts. The paper selects this class for
/// mapping social user names to hash buckets because it is uniform,
/// universal, applicable and fast.
struct ShiftAddXorParams {
  uint64_t seed = 31;  // init value v
  int left_shift = 5;  // l
  int right_shift = 2; // r
};

/// Raw (un-modded) shift-add-xor hash of a string.
uint64_t ShiftAddXorHash(std::string_view s,
                         const ShiftAddXorParams& params = {});

/// Bucketed hash: ShiftAddXorHash(s) mod table_size. table_size must be > 0.
uint64_t ShiftAddXorBucket(std::string_view s, uint64_t table_size,
                           const ShiftAddXorParams& params = {});

}  // namespace vrec::hashing

#endif  // VREC_HASHING_SHIFT_ADD_XOR_H_
