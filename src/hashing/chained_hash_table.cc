#include "hashing/chained_hash_table.h"

#include <string>
#include <unordered_set>

namespace vrec::hashing {

ChainedHashTable::ChainedHashTable(size_t bucket_count,
                                   ShiftAddXorParams params)
    : params_(params), buckets_(bucket_count == 0 ? 1 : bucket_count, -1) {}

void ChainedHashTable::InsertOrAssign(std::string_view key, int32_t cno) {
  const size_t b = BucketOf(key);
  for (int32_t i = buckets_[b]; i >= 0; i = triads_[static_cast<size_t>(i)].next) {
    Triad& t = triads_[static_cast<size_t>(i)];
    if (t.key == key) {
      t.cno = cno;
      return;
    }
  }
  int32_t slot;
  if (!free_list_.empty()) {
    slot = free_list_.back();
    free_list_.pop_back();
    triads_[static_cast<size_t>(slot)] = {std::string(key), cno, buckets_[b]};
  } else {
    slot = static_cast<int32_t>(triads_.size());
    triads_.push_back({std::string(key), cno, buckets_[b]});
  }
  buckets_[b] = slot;  // head insertion, as in the paper
  ++size_;
}

std::optional<int32_t> ChainedHashTable::Find(std::string_view key) const {
  const size_t b = BucketOf(key);
  for (int32_t i = buckets_[b]; i >= 0;
       i = triads_[static_cast<size_t>(i)].next) {
    comparisons_.fetch_add(1, std::memory_order_relaxed);
    const Triad& t = triads_[static_cast<size_t>(i)];
    if (t.key == key) return t.cno;
  }
  return std::nullopt;
}

std::optional<int32_t> ChainedHashTable::FindWithoutStats(
    std::string_view key) const {
  const size_t b = BucketOf(key);
  for (int32_t i = buckets_[b]; i >= 0;
       i = triads_[static_cast<size_t>(i)].next) {
    const Triad& t = triads_[static_cast<size_t>(i)];
    if (t.key == key) return t.cno;
  }
  return std::nullopt;
}

bool ChainedHashTable::Erase(std::string_view key) {
  const size_t b = BucketOf(key);
  int32_t prev = -1;
  for (int32_t i = buckets_[b]; i >= 0;
       prev = i, i = triads_[static_cast<size_t>(i)].next) {
    Triad& t = triads_[static_cast<size_t>(i)];
    if (t.key != key) continue;
    if (prev < 0) {
      buckets_[b] = t.next;
    } else {
      triads_[static_cast<size_t>(prev)].next = t.next;
    }
    t.key.clear();
    t.next = -1;
    free_list_.push_back(i);
    --size_;
    return true;
  }
  return false;
}

size_t ChainedHashTable::ReplaceCno(int32_t from, int32_t to) {
  size_t changed = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    for (int32_t i = buckets_[b]; i >= 0;
         i = triads_[static_cast<size_t>(i)].next) {
      Triad& t = triads_[static_cast<size_t>(i)];
      if (t.cno == from) {
        t.cno = to;
        ++changed;
      }
    }
  }
  return changed;
}

Status ChainedHashTable::CheckInvariants() const {
  if (buckets_.empty()) {
    return Status::Internal("hash table has no buckets");
  }
  std::vector<uint8_t> reached(triads_.size(), 0);
  std::unordered_set<std::string_view> keys;
  size_t reachable = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    for (int32_t i = buckets_[b]; i >= 0;
         i = triads_[static_cast<size_t>(i)].next) {
      if (static_cast<size_t>(i) >= triads_.size()) {
        return Status::Internal("triad index " + std::to_string(i) +
                                " out of arena range");
      }
      if (reached[static_cast<size_t>(i)] != 0) {
        return Status::Internal("triad " + std::to_string(i) +
                                " reachable twice (cycle or shared tail)");
      }
      reached[static_cast<size_t>(i)] = 1;
      ++reachable;
      const Triad& t = triads_[static_cast<size_t>(i)];
      if (BucketOf(t.key) != b) {
        return Status::Internal("key '" + t.key +
                                "' chained under the wrong bucket");
      }
      if (!keys.insert(t.key).second) {
        return Status::Internal("duplicate key '" + t.key + "'");
      }
    }
  }
  if (reachable != size_) {
    return Status::Internal("reachable triads (" + std::to_string(reachable) +
                            ") != size (" + std::to_string(size_) + ")");
  }
  for (int32_t f : free_list_) {
    if (f < 0 || static_cast<size_t>(f) >= triads_.size()) {
      return Status::Internal("free-list slot " + std::to_string(f) +
                              " out of arena range");
    }
    if (reached[static_cast<size_t>(f)] != 0) {
      return Status::Internal("free-list slot " + std::to_string(f) +
                              " still reachable (or freed twice)");
    }
    reached[static_cast<size_t>(f)] = 1;
  }
  if (reachable + free_list_.size() != triads_.size()) {
    return Status::Internal(
        "leaked arena slots: " + std::to_string(reachable) + " reachable + " +
        std::to_string(free_list_.size()) + " free != " +
        std::to_string(triads_.size()) + " allocated");
  }
  return Status::Ok();
}

double ChainedHashTable::AverageChainLength() const {
  size_t nonempty = 0;
  size_t total = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    size_t len = 0;
    for (int32_t i = buckets_[b]; i >= 0;
         i = triads_[static_cast<size_t>(i)].next) {
      ++len;
    }
    if (len > 0) {
      ++nonempty;
      total += len;
    }
  }
  return nonempty == 0 ? 0.0
                       : static_cast<double>(total) /
                             static_cast<double>(nonempty);
}

}  // namespace vrec::hashing
