#include "hashing/chained_hash_table.h"

namespace vrec::hashing {

ChainedHashTable::ChainedHashTable(size_t bucket_count,
                                   ShiftAddXorParams params)
    : params_(params), buckets_(bucket_count == 0 ? 1 : bucket_count, -1) {}

void ChainedHashTable::InsertOrAssign(std::string_view key, int32_t cno) {
  const size_t b = BucketOf(key);
  for (int32_t i = buckets_[b]; i >= 0; i = triads_[static_cast<size_t>(i)].next) {
    Triad& t = triads_[static_cast<size_t>(i)];
    if (t.key == key) {
      t.cno = cno;
      return;
    }
  }
  int32_t slot;
  if (!free_list_.empty()) {
    slot = free_list_.back();
    free_list_.pop_back();
    triads_[static_cast<size_t>(slot)] = {std::string(key), cno, buckets_[b]};
  } else {
    slot = static_cast<int32_t>(triads_.size());
    triads_.push_back({std::string(key), cno, buckets_[b]});
  }
  buckets_[b] = slot;  // head insertion, as in the paper
  ++size_;
}

std::optional<int32_t> ChainedHashTable::Find(std::string_view key) const {
  const size_t b = BucketOf(key);
  for (int32_t i = buckets_[b]; i >= 0;
       i = triads_[static_cast<size_t>(i)].next) {
    comparisons_.fetch_add(1, std::memory_order_relaxed);
    const Triad& t = triads_[static_cast<size_t>(i)];
    if (t.key == key) return t.cno;
  }
  return std::nullopt;
}

bool ChainedHashTable::Erase(std::string_view key) {
  const size_t b = BucketOf(key);
  int32_t prev = -1;
  for (int32_t i = buckets_[b]; i >= 0;
       prev = i, i = triads_[static_cast<size_t>(i)].next) {
    Triad& t = triads_[static_cast<size_t>(i)];
    if (t.key != key) continue;
    if (prev < 0) {
      buckets_[b] = t.next;
    } else {
      triads_[static_cast<size_t>(prev)].next = t.next;
    }
    t.key.clear();
    t.next = -1;
    free_list_.push_back(i);
    --size_;
    return true;
  }
  return false;
}

size_t ChainedHashTable::ReplaceCno(int32_t from, int32_t to) {
  size_t changed = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    for (int32_t i = buckets_[b]; i >= 0;
         i = triads_[static_cast<size_t>(i)].next) {
      Triad& t = triads_[static_cast<size_t>(i)];
      if (t.cno == from) {
        t.cno = to;
        ++changed;
      }
    }
  }
  return changed;
}

double ChainedHashTable::AverageChainLength() const {
  size_t nonempty = 0;
  size_t total = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    size_t len = 0;
    for (int32_t i = buckets_[b]; i >= 0;
         i = triads_[static_cast<size_t>(i)].next) {
      ++len;
    }
    if (len > 0) {
      ++nonempty;
      total += len;
    }
  }
  return nonempty == 0 ? 0.0
                       : static_cast<double>(total) /
                             static_cast<double>(nonempty);
}

}  // namespace vrec::hashing
