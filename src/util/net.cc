#include "util/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <vector>

namespace vrec::util {
namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

StatusOr<UniqueFd> ListenTcp(uint16_t port, int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), backlog) < 0) return Errno("listen");
  return fd;
}

StatusOr<uint16_t> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

StatusOr<UniqueFd> ConnectTcp(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINTR) return Errno("connect");
    // EINTR does not abort a connect: the handshake keeps going in the
    // background, and re-calling connect() reports EALREADY (or EISCONN
    // once established). POSIX's prescription is to wait for writability
    // and read the outcome from SO_ERROR.
    for (;;) {
      pollfd p{fd.get(), POLLOUT, 0};
      const int n = ::poll(&p, 1, /*timeout=*/-1);
      if (n > 0) break;
      if (n < 0 && errno != EINTR) return Errno("poll(connect)");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &err_len) < 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      errno = err;
      return Errno("connect");
    }
  }
  // Request/response frames are small; Nagle only adds latency here.
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

StatusOr<UniqueFd> AcceptWithWake(int listen_fd, int wake_fd) {
  for (;;) {
    pollfd fds[2];
    fds[0].fd = listen_fd;
    fds[0].events = POLLIN;
    fds[1].fd = wake_fd;
    fds[1].events = POLLIN;
    const int n = ::poll(fds, 2, /*timeout=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if ((fds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      return UniqueFd();  // woken: drain requested, no connection
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;  // the pending connection vanished; keep listening
      }
      return Errno("accept");
    }
    UniqueFd fd(conn);
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }
}

StatusOr<bool> ReadFullOrEof(int fd, void* buf, size_t len) {
  auto* dst = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, dst + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) {
      if (done == 0) return false;  // clean EOF at a frame boundary
      return Status::FailedPrecondition("truncated stream: peer closed "
                                        "mid-frame");
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

Status ReadFull(int fd, void* buf, size_t len) {
  const StatusOr<bool> got = ReadFullOrEof(fd, buf, len);
  if (!got.ok()) return got.status();
  if (!*got) {
    return Status::FailedPrecondition("unexpected EOF: peer closed");
  }
  return Status::Ok();
}

Status WriteFull(int fd, const void* buf, size_t len) {
  const auto* src = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < len) {
    // MSG_NOSIGNAL: a peer that closed or reset before reading (routine
    // under load and on the overload/deadline give-up paths) must surface
    // as an EPIPE Status, not a process-killing SIGPIPE. Non-socket fds
    // answer ENOTSOCK; fall back to write() for them.
    ssize_t n = ::send(fd, src + done, len - done, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, src + done, len - done);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::Ok();
}

StatusOr<UniqueFd> AcceptNonBlocking(int listen_fd) {
  for (;;) {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return UniqueFd();
      return Errno("accept");
    }
    UniqueFd fd(conn);
    if (const Status s = SetNonBlocking(fd.get()); !s.ok()) return s;
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }
}

StatusOr<NbIoResult> ReadNonBlocking(int fd, void* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, len);
    if (n > 0) {
      NbIoResult r;
      r.bytes = static_cast<size_t>(n);
      return r;
    }
    if (n == 0) {
      NbIoResult r;
      r.eof = true;
      return r;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      NbIoResult r;
      r.would_block = true;
      return r;
    }
    return Errno("read");
  }
}

StatusOr<NbIoResult> WriteNonBlocking(int fd, const void* buf, size_t len) {
  for (;;) {
    // MSG_NOSIGNAL for the same reason as WriteFull: a hung-up peer must
    // surface as a Status, never a process-killing SIGPIPE.
    ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, buf, len);
    if (n >= 0) {
      NbIoResult r;
      r.bytes = static_cast<size_t>(n);
      return r;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      NbIoResult r;
      r.would_block = true;
      return r;
    }
    return Errno("write");
  }
}

static_assert(kEpollIn == EPOLLIN && kEpollOut == EPOLLOUT &&
                  kEpollErr == EPOLLERR && kEpollHup == EPOLLHUP,
              "kEpoll* constants must mirror <sys/epoll.h>");

StatusOr<UniqueFd> EpollCreate() {
  UniqueFd fd(::epoll_create1(EPOLL_CLOEXEC));
  if (!fd.valid()) return Errno("epoll_create1");
  return fd;
}

namespace {

Status EpollCtl(int epoll_fd, int op, int fd, uint32_t events, uint64_t tag,
                const char* what) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd, op, fd, &ev) < 0) return Errno(what);
  return Status::Ok();
}

}  // namespace

Status EpollAdd(int epoll_fd, int fd, uint32_t events, uint64_t tag) {
  return EpollCtl(epoll_fd, EPOLL_CTL_ADD, fd, events, tag,
                  "epoll_ctl(ADD)");
}

Status EpollMod(int epoll_fd, int fd, uint32_t events, uint64_t tag) {
  return EpollCtl(epoll_fd, EPOLL_CTL_MOD, fd, events, tag,
                  "epoll_ctl(MOD)");
}

Status EpollDel(int epoll_fd, int fd) {
  epoll_event unused{};
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, &unused) < 0) {
    return Errno("epoll_ctl(DEL)");
  }
  return Status::Ok();
}

StatusOr<size_t> EpollWait(int epoll_fd, EpollEvent* out, size_t capacity,
                           int timeout_ms) {
  std::vector<epoll_event> events(capacity);
  for (;;) {
    const int n = ::epoll_wait(epoll_fd, events.data(),
                               static_cast<int>(capacity), timeout_ms);
    if (n >= 0) {
      for (int i = 0; i < n; ++i) {
        out[i].tag = events[static_cast<size_t>(i)].data.u64;
        out[i].events = events[static_cast<size_t>(i)].events;
      }
      return static_cast<size_t>(n);
    }
    if (errno == EINTR) continue;
    return Errno("epoll_wait");
  }
}

void ShutdownRead(int fd) { ::shutdown(fd, SHUT_RD); }

void ShutdownBoth(int fd) { ::shutdown(fd, SHUT_RDWR); }

StatusOr<std::pair<UniqueFd, UniqueFd>> MakeWakePipe() {
  int fds[2];
  if (::pipe(fds) < 0) return Errno("pipe");
  UniqueFd rd(fds[0]);
  UniqueFd wr(fds[1]);
  // The write end may be poked from a signal handler; never let it block.
  const int flags = ::fcntl(wr.get(), F_GETFL);
  if (flags >= 0) ::fcntl(wr.get(), F_SETFL, flags | O_NONBLOCK);
  return std::make_pair(std::move(rd), std::move(wr));
}

void SignalWake(int wake_wr_fd) {
  const uint8_t byte = 1;
  // Best effort by design: EAGAIN means the pipe already holds a wake-up.
  [[maybe_unused]] const ssize_t n = ::write(wake_wr_fd, &byte, 1);
}

void DrainWake(int wake_rd_fd) {
  uint8_t buf[64];
  for (;;) {
    pollfd p{wake_rd_fd, POLLIN, 0};
    if (::poll(&p, 1, 0) <= 0 || (p.revents & POLLIN) == 0) return;
    if (::read(wake_rd_fd, buf, sizeof(buf)) <= 0) return;
  }
}

}  // namespace vrec::util
