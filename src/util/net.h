#ifndef VREC_UTIL_NET_H_
#define VREC_UTIL_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace vrec::util {

/// EINTR-safe POSIX socket helpers. Everything in the tree that touches a
/// file descriptor goes through this header: the raw send/recv/read/write
/// syscalls silently return short counts or fail with EINTR under signal
/// load (exactly the condition a draining server is in), so vrec_lint
/// forbids them outside this translation unit.

/// Owning file descriptor: closes on destruction (retrying close() is
/// deliberately not done — POSIX leaves the fd state after EINTR undefined
/// and Linux always releases it). Movable, not copyable.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Relinquishes ownership without closing.
  int Release() { return std::exchange(fd_, -1); }
  /// Closes the held descriptor (if any) and takes ownership of `fd`.
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Creates a TCP listening socket bound to INADDR_ANY:`port` with
/// SO_REUSEADDR set. `port` 0 binds an ephemeral port (read it back with
/// BoundPort).
[[nodiscard]]
StatusOr<UniqueFd> ListenTcp(uint16_t port, int backlog);

/// The local port a bound socket listens on.
[[nodiscard]]
StatusOr<uint16_t> BoundPort(int fd);

/// Blocking connect to a numeric IPv4 address (or "localhost"). DNS is out
/// of scope for the serving layer; clients pass dotted quads.
[[nodiscard]]
StatusOr<UniqueFd> ConnectTcp(const std::string& host, uint16_t port);

/// Blocks until a connection is accepted or `wake_fd` becomes readable
/// (the server's shutdown pipe). Returns an *invalid* UniqueFd — not an
/// error — when woken by `wake_fd`, so the accept loop can distinguish
/// "drain requested" from a real failure. EINTR is retried.
[[nodiscard]]
StatusOr<UniqueFd> AcceptWithWake(int listen_fd, int wake_fd);

/// Reads exactly `len` bytes, retrying on EINTR and short reads. EOF before
/// `len` bytes is an error (kFailedPrecondition: truncated stream).
[[nodiscard]]
Status ReadFull(int fd, void* buf, size_t len);

/// Like ReadFull, but a clean EOF *before the first byte* returns false
/// (the peer closed between frames — the normal end of a connection).
/// EOF mid-buffer is still an error.
[[nodiscard]]
StatusOr<bool> ReadFullOrEof(int fd, void* buf, size_t len);

/// Writes exactly `len` bytes, retrying on EINTR and short writes. On
/// sockets the write is SIGPIPE-free (MSG_NOSIGNAL): a peer that hung up
/// before reading yields an error Status instead of killing the process.
[[nodiscard]]
Status WriteFull(int fd, const void* buf, size_t len);

/// Half-closes the read side so a peer (or our own connection thread)
/// blocked in ReadFull wakes with EOF; in-flight writes still complete.
/// Used by graceful drain to stop accepting new frames on live
/// connections while their queued responses are flushed.
void ShutdownRead(int fd);

/// Full shutdown (both directions): the peer sees EOF immediately, even
/// though the descriptor itself is released later. Connection threads call
/// this on exit — the fd is only close()d when the accept loop reaps the
/// finished connection, which may be long after the protocol decided to
/// hang up.
void ShutdownBoth(int fd);

// --- Non-blocking I/O + epoll (the reactor's substrate) -------------------

/// Puts the descriptor in non-blocking mode (O_NONBLOCK).
[[nodiscard]]
Status SetNonBlocking(int fd);

/// Non-blocking accept: an *invalid* UniqueFd means no connection is
/// pending right now (EAGAIN) — not an error. EINTR/ECONNABORTED are
/// retried. The accepted socket comes back non-blocking with TCP_NODELAY
/// set, ready for epoll registration.
[[nodiscard]]
StatusOr<UniqueFd> AcceptNonBlocking(int listen_fd);

/// Outcome of one non-blocking transfer attempt. Exactly one of
/// `bytes > 0`, `eof`, or `would_block` describes what happened (hard
/// errors come back as a Status instead).
struct NbIoResult {
  size_t bytes = 0;        // transferred by this call
  bool eof = false;        // read only: the peer closed cleanly
  bool would_block = false;  // no progress possible without blocking
};

/// One read() attempt on a non-blocking descriptor (EINTR retried).
[[nodiscard]]
StatusOr<NbIoResult> ReadNonBlocking(int fd, void* buf, size_t len);

/// One write attempt on a non-blocking descriptor (EINTR retried). On
/// sockets the write is SIGPIPE-free (MSG_NOSIGNAL), like WriteFull.
[[nodiscard]]
StatusOr<NbIoResult> WriteNonBlocking(int fd, const void* buf, size_t len);

/// Event bits for the epoll wrappers; values mirror EPOLLIN/EPOLLOUT/
/// EPOLLERR/EPOLLHUP (static_asserted in net.cc) so callers never include
/// <sys/epoll.h> themselves.
inline constexpr uint32_t kEpollIn = 0x001;
inline constexpr uint32_t kEpollOut = 0x004;
inline constexpr uint32_t kEpollErr = 0x008;
inline constexpr uint32_t kEpollHup = 0x010;

struct EpollEvent {
  uint64_t tag = 0;     // caller-chosen id registered with EpollAdd/Mod
  uint32_t events = 0;  // kEpoll* bits
};

/// Creates a level-triggered epoll instance (CLOEXEC).
[[nodiscard]]
StatusOr<UniqueFd> EpollCreate();

/// Registers `fd` with interest `events` (kEpoll* bits); `tag` comes back
/// in EpollEvent::tag. EPOLLERR/EPOLLHUP are always reported by the
/// kernel, interest mask or not.
[[nodiscard]]
Status EpollAdd(int epoll_fd, int fd, uint32_t events, uint64_t tag);

/// Updates the interest mask (and tag) of an already-registered fd.
[[nodiscard]]
Status EpollMod(int epoll_fd, int fd, uint32_t events, uint64_t tag);

/// Deregisters `fd`.
[[nodiscard]]
Status EpollDel(int epoll_fd, int fd);

/// Blocks up to `timeout_ms` (-1 = forever) for events; returns how many
/// of `out[0..capacity)` were filled. EINTR is retried.
[[nodiscard]]
StatusOr<size_t> EpollWait(int epoll_fd, EpollEvent* out, size_t capacity,
                           int timeout_ms);

/// A pipe whose write end can be written from a signal handler (one byte,
/// async-signal-safe) to wake a poll()-er on the read end.
[[nodiscard]]
StatusOr<std::pair<UniqueFd, UniqueFd>> MakeWakePipe();  // {read, write}

/// Writes one byte to a wake pipe; async-signal-safe, errors ignored
/// (a full pipe already guarantees the reader will wake).
void SignalWake(int wake_wr_fd);

/// Drains any pending bytes from a wake pipe without blocking.
void DrainWake(int wake_rd_fd);

}  // namespace vrec::util

#endif  // VREC_UTIL_NET_H_
