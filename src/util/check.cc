#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace vrec::util {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& detail) {
  if (detail.empty()) {
    std::fprintf(stderr, "VREC_CHECK failed at %s:%d: %s\n", file, line, expr);
  } else {
    std::fprintf(stderr, "VREC_CHECK failed at %s:%d: %s (%s)\n", file, line,
                 expr, detail.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace vrec::util
