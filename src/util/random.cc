#include "util/random.h"

#include <cmath>
#include <numbers>

namespace vrec {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v = NextU64();
  while (v >= limit) v = NextU64();
  return lo + static_cast<int64_t>(v % span);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Cauchy() {
  double u = NextDouble();
  while (u <= 0.0 || u >= 1.0) u = NextDouble();
  return std::tan(std::numbers::pi * (u - 0.5));
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

int64_t Rng::Zipf(int64_t n, double s) {
  // Inverse-CDF sampling over the truncated Zipf distribution. n is expected
  // to be modest (catalog sizes in the thousands), so a linear walk over the
  // harmonic weights is fine and exact.
  double h = 0.0;
  for (int64_t i = 1; i <= n; ++i) h += 1.0 / std::pow(static_cast<double>(i), s);
  double u = NextDouble() * h;
  double acc = 0.0;
  for (int64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (u <= acc) return i;
  }
  return n;
}

int64_t Rng::Weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u <= acc) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> pool(n);
  for (size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: the first k slots become the sample.
  for (size_t i = 0; i < k && i + 1 < n; ++i) {
    size_t j = static_cast<size_t>(
        UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n - 1)));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace vrec
