#ifndef VREC_UTIL_STOPWATCH_H_
#define VREC_UTIL_STOPWATCH_H_

#include <chrono>

namespace vrec {

/// Wall-clock stopwatch used by the benchmark harnesses to report the
/// per-phase timings that back the paper's efficiency figures (Fig. 12).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart();

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace vrec

#endif  // VREC_UTIL_STOPWATCH_H_
