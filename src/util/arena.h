#ifndef VREC_UTIL_ARENA_H_
#define VREC_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "util/check.h"

namespace vrec::util {

/// Bump allocator for per-query scratch. Allocation is a pointer increment
/// into the current chunk; individual frees are no-ops; `Reset()` reclaims
/// everything at once (keeping the largest chunk so a steady-state query
/// workload reaches zero chunk churn). Not thread-safe — each thread owns
/// its own arena (see ThisThreadArena).
class Arena {
 public:
  explicit Arena(size_t initial_bytes = kDefaultChunkBytes)
      : next_chunk_bytes_(initial_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (power of two). The
  /// storage is valid until the next Reset().
  void* Allocate(size_t bytes, size_t align) {
    VREC_DCHECK(align != 0 && (align & (align - 1)) == 0);
    if (bytes == 0) bytes = 1;
    uintptr_t p = (cursor_ + (align - 1)) & ~uintptr_t{align - 1};
    if (p + bytes > limit_) {
      AddChunk(bytes + align);
      p = (cursor_ + (align - 1)) & ~uintptr_t{align - 1};
    }
    cursor_ = p + bytes;
    allocated_bytes_ += bytes;
    return reinterpret_cast<void*>(p);  // NOLINT(performance-no-int-to-ptr)
  }

  /// Invalidates every outstanding allocation. Keeps only the largest chunk
  /// so repeated Reset/allocate cycles stop touching the system allocator.
  void Reset() {
    if (chunks_.size() > 1) {
      size_t largest = 0;
      for (size_t i = 1; i < chunks_.size(); ++i) {
        if (chunks_[i].size > chunks_[largest].size) largest = i;
      }
      Chunk keep = std::move(chunks_[largest]);
      chunks_.clear();
      chunks_.push_back(std::move(keep));
    }
    if (!chunks_.empty()) {
      cursor_ = reinterpret_cast<uintptr_t>(chunks_.back().data.get());
      limit_ = cursor_ + chunks_.back().size;
    } else {
      cursor_ = 0;
      limit_ = 0;
    }
    allocated_bytes_ = 0;
  }

  /// Bytes handed out since the last Reset (excludes alignment padding).
  size_t allocated_bytes() const { return allocated_bytes_; }
  /// Total bytes owned across all chunks.
  size_t capacity_bytes() const {
    size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }
  size_t chunk_count() const { return chunks_.size(); }

 private:
  static constexpr size_t kDefaultChunkBytes = size_t{16} << 10;

  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  void AddChunk(size_t min_bytes) {
    size_t size = next_chunk_bytes_;
    if (size < kDefaultChunkBytes) size = kDefaultChunkBytes;
    while (size < min_bytes) size *= 2;
    next_chunk_bytes_ = size * 2;  // geometric growth caps chunk count
    Chunk chunk;
    chunk.data = std::make_unique<char[]>(size);
    chunk.size = size;
    cursor_ = reinterpret_cast<uintptr_t>(chunk.data.get());
    limit_ = cursor_ + size;
    chunks_.push_back(std::move(chunk));
  }

  std::vector<Chunk> chunks_;
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  size_t allocated_bytes_ = 0;
  size_t next_chunk_bytes_;
};

/// std::allocator adapter. With a non-null arena, allocations bump-allocate
/// and deallocate is a no-op (memory returns on Arena::Reset). With a null
/// arena it degrades to the global heap, so one container type serves both
/// the `arena_scratch` ablation states — the allocation strategy can never
/// change computed values, only where the bytes live.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() = default;
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  // NOLINTNEXTLINE(google-explicit-constructor): allocator rebind requires it.
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, size_t /*n*/) {
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  Arena* arena_ = nullptr;
};

/// Vector whose backing store lives in an arena (or on the heap when the
/// arena pointer is null).
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

/// The calling thread's arena, created on first use. Each ThreadPool worker
/// (and the caller thread participating in ParallelFor) gets its own, which
/// is what makes per-query Reset() safe under concurrent queries.
inline Arena* ThisThreadArena() {
  thread_local Arena arena;
  return &arena;
}

}  // namespace vrec::util

#endif  // VREC_UTIL_ARENA_H_
