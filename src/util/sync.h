#ifndef VREC_UTIL_SYNC_H_
#define VREC_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>  // NOLINT(vrec-raw-mutex)
#include <mutex>               // NOLINT(vrec-raw-mutex)

/// Clang Thread Safety Analysis (TSA) annotations plus the mutex types the
/// whole tree locks with.
///
/// Every mutex in library code is a `vrec::util::Mutex`, every guarded
/// member is tagged `VREC_GUARDED_BY(mutex_)`, and every function with a
/// locking precondition is tagged `VREC_REQUIRES(mutex_)`. Under Clang,
/// `-Wthread-safety -Werror=thread-safety` (the `tsa` stage of
/// scripts/verify.sh, enabled by -DVREC_TSA=ON) then proves at compile time
/// that no guarded member is ever touched without its lock and that every
/// acquire is balanced by a release on every path — the static complement
/// to the TSan stage, which needs the racy schedule to actually occur. On
/// non-Clang compilers every macro expands to nothing and `Mutex` is a
/// zero-cost veneer over std::mutex.
///
/// Raw std::mutex / std::lock_guard / std::unique_lock /
/// std::condition_variable are banned from src/ outside this file
/// (tools/vrec_lint.py, rule vrec-raw-mutex): an unwrapped lock is
/// invisible to the analysis, so it would silently punch a hole in the
/// compile-time discipline.
///
/// Escape hatch policy: `VREC_NO_THREAD_SAFETY_ANALYSIS` is acceptable in
/// exactly two places, each with a comment saying why —
///   1. the lock-primitive implementations in this file (the analysis
///      cannot see that std::mutex::lock() acquires the capability the
///      wrapper declares; this is the idiom Clang's own documentation
///      prescribes for locking interfaces), and
///   2. condition-variable internals that temporarily adopt/release the
///      native handle (CondVar::Wait* below). Call *sites* never need it:
///      `Wait(mu)` is annotated VREC_REQUIRES(mu), which is exactly the
///      truth — the caller holds the lock before and after, and the
///      unlock/relock inside the wait is balanced and invisible.
/// Wait loops must be written as explicit `while (!pred) cv.Wait(mu);`
/// statements rather than the predicate-lambda overloads of the standard
/// library: a lambda body is analyzed as its own function, which does not
/// inherit the caller's lock set, so a predicate reading guarded state
/// would need its own escape hatch. The explicit loop keeps the predicate
/// in the annotated function, where the analysis can see the lock.

#if defined(__clang__) && !defined(SWIG)
#define VREC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define VREC_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Tags a class as a lockable capability ("mutex" names it in diagnostics).
#define VREC_CAPABILITY(x) VREC_THREAD_ANNOTATION_(capability(x))

/// Tags an RAII class whose constructor acquires and destructor releases.
#define VREC_SCOPED_CAPABILITY VREC_THREAD_ANNOTATION_(scoped_lockable)

/// Member may only be read/written while holding `x`.
#define VREC_GUARDED_BY(x) VREC_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define VREC_PT_GUARDED_BY(x) VREC_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and
/// leaves them held on exit).
#define VREC_REQUIRES(...) \
  VREC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on exit, not on entry).
#define VREC_ACQUIRE(...) \
  VREC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define VREC_RELEASE(...) \
  VREC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the first argument
/// (e.g. VREC_TRY_ACQUIRE(true)).
#define VREC_TRY_ACQUIRE(...) \
  VREC_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the listed capabilities held (deadlock
/// documentation: it will acquire them itself).
#define VREC_EXCLUDES(...) VREC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define VREC_RETURN_CAPABILITY(x) VREC_THREAD_ANNOTATION_(lock_returned(x))

/// Disables the analysis for one function body. See the escape-hatch
/// policy above: primitive implementations and condition-variable
/// internals only, always with a justifying comment.
#define VREC_NO_THREAD_SAFETY_ANALYSIS \
  VREC_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace vrec::util {

class CondVar;

/// The tree's mutex: std::mutex carrying the `capability` attribute so the
/// analysis can name it. Prefer the scoped MutexLock; explicit
/// Lock()/Unlock() is for the few loops that hand a lock across an
/// unlock/relock window (e.g. MicroBatcher::WorkerLoop around its flush
/// callback), where the analysis still verifies balance on every path.
class VREC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Escape hatch per the policy above: the analysis cannot see that the
  /// wrapped std::mutex acquisition satisfies the declared capability.
  void Lock() VREC_ACQUIRE() VREC_NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }

  void Unlock() VREC_RELEASE() VREC_NO_THREAD_SAFETY_ANALYSIS {
    mu_.unlock();
  }

  /// True (and the lock is held) iff the mutex was free. Branch on the
  /// result — the analysis tracks the boolean.
  [[nodiscard]]
  bool TryLock() VREC_TRY_ACQUIRE(true) VREC_NO_THREAD_SAFETY_ANALYSIS {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;  // Wait* adopt the native handle; nobody else may.
  std::mutex mu_;        // NOLINT(vrec-raw-mutex)
};

/// Scoped lock: acquires in the constructor, releases in the destructor.
/// The scoped_lockable annotation makes the scope itself the proof of
/// discipline — early returns and exceptions cannot leak the lock.
class VREC_SCOPED_CAPABILITY MutexLock {
 public:
  /// Escape hatch per the policy above (primitive implementation).
  explicit MutexLock(Mutex& mu) VREC_ACQUIRE(mu) VREC_NO_THREAD_SAFETY_ANALYSIS
      : mu_(mu) {
    mu_.Lock();
  }

  ~MutexLock() VREC_RELEASE() VREC_NO_THREAD_SAFETY_ANALYSIS { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait/WaitUntil are annotated
/// VREC_REQUIRES(mu): the caller holds the lock on entry and on return,
/// and the internal unlock-while-sleeping is balanced, so call sites need
/// no escape hatch. Always wait in a loop:
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.Wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and sleeps; reacquires `mu` before
  /// returning. Spurious wakeups happen — loop on the predicate.
  ///
  /// Escape hatch per the policy above (condition-variable internals):
  /// the adopt/release dance below hands the held lock to the standard
  /// wait primitive without double-locking; the analysis cannot model the
  /// temporary ownership transfer, but the lock state at entry and exit
  /// is exactly what VREC_REQUIRES declares.
  void Wait(Mutex& mu) VREC_REQUIRES(mu) VREC_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(mu.mu_,  // NOLINT(vrec-raw-mutex)
                                        std::adopt_lock);
    cv_.wait(native);
    native.release();  // the caller still owns the (reacquired) lock
  }

  /// Wait(), with a deadline. Returns std::cv_status::timeout when the
  /// deadline passed (the lock is reacquired either way).
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(Mutex& mu,
                           const std::chrono::time_point<Clock, Duration>&
                               deadline) VREC_REQUIRES(mu)
      VREC_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(mu.mu_,  // NOLINT(vrec-raw-mutex)
                                        std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // NOLINT(vrec-raw-mutex)
};

}  // namespace vrec::util

#endif  // VREC_UTIL_SYNC_H_
