#include "util/thread_pool.h"

#include <algorithm>

namespace vrec::util {

size_t ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = num_threads == 0 ? DefaultThreadCount() : num_threads;
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = pool == nullptr ? 0 : pool->size();
  if (workers == 0 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // One shared counter hands out items; the caller drains alongside the
  // workers, so progress is guaranteed even when the pool is saturated by
  // other batches. A per-call latch (not ThreadPool::Wait) lets concurrent
  // ParallelFor calls share one pool without waiting on each other's tasks.
  struct Latch {
    std::atomic<size_t> next{0};
    std::mutex mutex;
    std::condition_variable done;
    size_t pending = 0;
  };
  auto latch = std::make_shared<Latch>();
  const size_t tasks = std::min(workers, n - 1);  // caller covers the rest
  latch->pending = tasks;

  const auto drain = [latch, n, &fn] {
    for (size_t i = latch->next.fetch_add(1, std::memory_order_relaxed);
         i < n; i = latch->next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  for (size_t t = 0; t < tasks; ++t) {
    pool->Submit([latch, drain] {
      drain();
      {
        std::lock_guard<std::mutex> lock(latch->mutex);
        --latch->pending;
      }
      latch->done.notify_one();
    });
  }
  drain();
  std::unique_lock<std::mutex> lock(latch->mutex);
  latch->done.wait(lock, [&latch] { return latch->pending == 0; });
}

}  // namespace vrec::util
