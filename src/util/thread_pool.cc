#include "util/thread_pool.h"

#include <algorithm>
#include <memory>

namespace vrec::util {

size_t ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = num_threads == 0 ? DefaultThreadCount() : num_threads;
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.Wait(mutex_);
}

void ThreadPool::WorkerLoop() {
  mutex_.Lock();
  for (;;) {
    while (!shutting_down_ && queue_.empty()) work_available_.Wait(mutex_);
    if (queue_.empty()) {  // shutting down and drained
      mutex_.Unlock();
      return;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    mutex_.Unlock();
    task();
    mutex_.Lock();
    if (--in_flight_ == 0) all_done_.NotifyAll();
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = pool == nullptr ? 0 : pool->size();
  if (workers == 0 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // One shared counter hands out items; the caller drains alongside the
  // workers, so progress is guaranteed even when the pool is saturated by
  // other batches. A per-call latch (not ThreadPool::Wait) lets concurrent
  // ParallelFor calls share one pool without waiting on each other's tasks.
  struct Latch {
    // relaxed: the counter only distributes indices — no task observes
    // another task's writes through it, so no ordering is required. The
    // completion handshake below synchronizes through `mutex`.
    std::atomic<size_t> next{0};
    Mutex mutex;
    CondVar done;
    size_t pending VREC_GUARDED_BY(mutex) = 0;
  };
  auto latch = std::make_shared<Latch>();
  const size_t tasks = std::min(workers, n - 1);  // caller covers the rest
  {
    // Uncontended (no task submitted yet), but `pending` is guarded, and
    // the analysis rightly has no notion of "not shared yet".
    MutexLock lock(latch->mutex);
    latch->pending = tasks;
  }

  const auto drain = [latch, n, &fn] {
    for (size_t i = latch->next.fetch_add(1, std::memory_order_relaxed);
         i < n; i = latch->next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  for (size_t t = 0; t < tasks; ++t) {
    pool->Submit([latch, drain] {
      drain();
      {
        MutexLock lock(latch->mutex);
        --latch->pending;
      }
      latch->done.NotifyOne();
    });
  }
  drain();
  MutexLock lock(latch->mutex);
  while (latch->pending != 0) latch->done.Wait(latch->mutex);
}

}  // namespace vrec::util
