#include "util/simd.h"

#include <algorithm>
#include <cmath>

// VREC_SIMD_LOOP marks a loop for vectorization. The guard keeps the pragma
// out of builds that would warn on it (-DVREC_SIMD=OFF, or a compiler
// without -fopenmp-simd), which is exactly the "scalar fallback compiled in
// all builds" contract: the loop bodies below are the fallback.
#if defined(VREC_SIMD_ENABLED) && (defined(__clang__) || defined(__GNUC__))
#define VREC_SIMD_LOOP _Pragma("omp simd")
#else
#define VREC_SIMD_LOOP
#endif

namespace vrec::util::simd {

bool CompiledWithSimd() {
#if defined(VREC_SIMD_ENABLED) && (defined(__clang__) || defined(__GNUC__))
  return true;
#else
  return false;
#endif
}

void SimCUpperBoundMany(double query_mean, const double* means, size_t n,
                        double* out) {
  VREC_SIMD_LOOP
  for (size_t i = 0; i < n; ++i) {
    out[i] = 1.0 / (1.0 + std::abs(query_mean - means[i]));
  }
}

void JaccardCardinalityBoundMany(double query_size, const double* sizes,
                                 size_t n, double* out) {
  VREC_SIMD_LOOP
  for (size_t i = 0; i < n; ++i) {
    const double lo = std::min(query_size, sizes[i]);
    const double hi = std::max(query_size, sizes[i]);
    // Lane select, not a branch: when lo == 0 the (possibly 0/0) quotient
    // is discarded, matching the scalar guard in JaccardCardinalityBound.
    out[i] = lo == 0.0 ? 0.0 : lo / hi;
  }
}

}  // namespace vrec::util::simd
