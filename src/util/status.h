#ifndef VREC_UTIL_STATUS_H_
#define VREC_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

namespace vrec {

/// Result status of a fallible operation. The library does not throw across
/// its public API; operations that can fail return a Status (or a StatusOr
/// carrying a value). The class is [[nodiscard]]: a call site that ignores a
/// returned Status does not compile cleanly — either handle it or fail loudly
/// with VREC_CHECK_OK.
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kFailedPrecondition,
    kOutOfRange,
    kInternal,
    kResourceExhausted,
    kDeadlineExceeded,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  /// A bounded resource (admission queue, connection slots) is full; the
  /// request was rejected rather than queued without limit. Retryable.
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  /// The request's deadline expired before it could be served.
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: k must be positive".
  std::string ToString() const;

 private:
  Code code_;
  std::string message_;
};

/// A Status plus a value; the value is only meaningful when ok(). Accessing
/// the value of a non-ok StatusOr is a programming error: in Debug and
/// sanitizer builds it aborts via VREC_DCHECK instead of silently handing
/// back a default-constructed T.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicitly constructible from a value (success) or a Status (failure);
  /// mirrors absl::StatusOr ergonomics.
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    VREC_DCHECK(ok());
    return value_;
  }
  T& value() & {
    VREC_DCHECK(ok());
    return value_;
  }
  T&& value() && {
    VREC_DCHECK(ok());
    return std::move(value_);
  }

  const T& operator*() const& {
    VREC_DCHECK(ok());
    return value_;
  }
  T& operator*() & {
    VREC_DCHECK(ok());
    return value_;
  }
  const T* operator->() const {
    VREC_DCHECK(ok());
    return &value_;
  }
  T* operator->() {
    VREC_DCHECK(ok());
    return &value_;
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace vrec

#endif  // VREC_UTIL_STATUS_H_
