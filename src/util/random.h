#ifndef VREC_UTIL_RANDOM_H_
#define VREC_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace vrec {

/// Deterministic, fast PRNG (xoshiro256** seeded via splitmix64).
///
/// Every stochastic component in the library (data generators, LSH
/// projections, simulated raters) draws from an explicitly-seeded Rng so that
/// experiments are exactly reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Standard Cauchy variate (used for L1-stable LSH projections).
  double Cauchy();

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [1, n] with exponent s (popularity skew).
  int64_t Zipf(int64_t n, double s);

  /// Samples an index according to the (unnormalized) weights. Weights must
  /// be non-negative with positive sum.
  int64_t Weighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Draws k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace vrec

#endif  // VREC_UTIL_RANDOM_H_
