#ifndef VREC_UTIL_THREAD_POOL_H_
#define VREC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace vrec::util {

/// Fixed-size worker pool with one shared FIFO queue (no work stealing —
/// query batches are coarse-grained enough that a single locked queue is
/// nowhere near contended). Built once and reused across batches; the
/// serving path shares one pool so thread count, not query count, bounds
/// CPU use.
///
/// Tasks must not throw: the library's public API is Status-based and the
/// pool runs tasks as-is.
class ThreadPool {
 public:
  /// `num_threads` == 0 picks the hardware concurrency.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t size() const { return threads_.size(); }

  /// Enqueues a task. Safe from any thread, including pool workers.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished. Do not call
  /// from inside a pool task.
  void Wait();

  /// What ThreadPool(0) resolves to (>= 1).
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  Mutex mutex_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ VREC_GUARDED_BY(mutex_);
  /// queued + currently executing
  size_t in_flight_ VREC_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ VREC_GUARDED_BY(mutex_) = false;
  /// Written only by the constructor, joined only by the destructor; never
  /// touched while workers run, so no guard is needed.
  std::vector<std::thread> threads_;
};

/// Runs `fn(i)` for every i in [0, n), spread across the pool's workers with
/// the calling thread participating; returns when all n calls finished.
/// Scheduling is dynamic (one shared index counter), so uneven per-item cost
/// balances automatically. Runs inline when `pool` is null or single-item.
/// Distinct ParallelFor calls may run concurrently on one pool, but `fn`
/// itself must not call back into ParallelFor on the same pool.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace vrec::util

#endif  // VREC_UTIL_THREAD_POOL_H_
