#ifndef VREC_UTIL_SIMD_H_
#define VREC_UTIL_SIMD_H_

#include <cstddef>

namespace vrec::util::simd {

/// Whether this build processes the `omp simd` annotations (configured with
/// -DVREC_SIMD=ON and a compiler that accepts -fopenmp-simd). When false the
/// batched kernels below compile to plain scalar loops — same arithmetic,
/// same bits, no vector units involved.
bool CompiledWithSimd();

/// Batched centroid bound: out[i] = 1 / (1 + |query_mean - means[i]|), the
/// SimC upper bound of one query signature against a block of candidate
/// signature means. Every lane applies the same elementwise sub/abs/add/div
/// chain as the scalar SimCUpperBound — IEEE 754 makes each of those
/// operations exactly rounded per lane, so the batched result is
/// bit-identical to the scalar loop regardless of vector width.
void SimCUpperBoundMany(double query_mean, const double* means, size_t n,
                        double* out);

/// Batched audience-cardinality bound: out[i] equals
/// social::JaccardCardinalityBound(query_size, sizes[i]) with both sizes
/// carried as exact small integers in double (min/max/divide are elementwise,
/// so bit-identity holds as above; the lo == 0 guard becomes a lane select).
void JaccardCardinalityBoundMany(double query_size, const double* sizes,
                                 size_t n, double* out);

}  // namespace vrec::util::simd

#endif  // VREC_UTIL_SIMD_H_
