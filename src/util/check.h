#ifndef VREC_UTIL_CHECK_H_
#define VREC_UTIL_CHECK_H_

#include <string>

namespace vrec::util {

/// Reports a failed check to stderr and aborts. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& detail = {});

namespace check_internal {

/// Renders the failure of a Status-like object (anything with ok()) without
/// this header depending on util/status.h — status.h includes check.h for
/// the DCHECKs in StatusOr's accessors, so the dependency must point one way.
template <typename T>
std::string DescribeFailure(const T& result) {
  if constexpr (requires { result.ToString(); }) {
    return result.ToString();
  } else {
    return result.status().ToString();
  }
}

}  // namespace check_internal
}  // namespace vrec::util

/// VREC_CHECK / VREC_CHECK_OK are always on: they guard conditions whose
/// violation makes continuing meaningless in any build (index corruption,
/// broken container invariants). VREC_DCHECK / VREC_DCHECK_OK compile to
/// nothing in plain release builds; they are active in Debug builds and in
/// every sanitizer build (-DVREC_SANITIZE=...), so the ASan/UBSan/TSan
/// stages of scripts/verify.sh execute the full invariant layer.
#define VREC_CHECK(cond)                                           \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::vrec::util::CheckFailed(__FILE__, __LINE__, #cond);        \
    }                                                              \
  } while (false)

#define VREC_CHECK_OK(expr)                                        \
  do {                                                             \
    const auto& vrec_check_result_ = (expr);                       \
    if (!vrec_check_result_.ok()) {                                \
      ::vrec::util::CheckFailed(                                   \
          __FILE__, __LINE__, #expr,                               \
          ::vrec::util::check_internal::DescribeFailure(           \
              vrec_check_result_));                                \
    }                                                              \
  } while (false)

#if !defined(NDEBUG) || defined(VREC_DCHECK_ENABLED) ||            \
    defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define VREC_DCHECK_IS_ON() 1
#else
#define VREC_DCHECK_IS_ON() 0
#endif

#if VREC_DCHECK_IS_ON()
#define VREC_DCHECK(cond) VREC_CHECK(cond)
#define VREC_DCHECK_OK(expr) VREC_CHECK_OK(expr)
#else
// Off: the argument is parsed (so it cannot bit-rot) but never evaluated.
#define VREC_DCHECK(cond)            \
  do {                               \
    if (false) {                     \
      static_cast<void>(cond);      \
    }                                \
  } while (false)
#define VREC_DCHECK_OK(expr)         \
  do {                               \
    if (false) {                     \
      static_cast<void>(expr);      \
    }                                \
  } while (false)
#endif

#endif  // VREC_UTIL_CHECK_H_
