#include "util/status.h"

namespace vrec {
namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "Ok";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace vrec
